(** Per-stopping-point variable validity, proven by the compiler and
    shipped to the debugger through the symbol table — the paper's "get
    help from the compiler" applied to a question every debugger fudges:
    {e is the value in this variable's slot meaningful right now?}

    For every tracked local (the [Dataflow.tracked] universe: named
    scalars that never escape) we compute, at every stopping point, one of
    three facts:

    - [Uninit] — some path reaches this stop without writing the
      variable, so the slot may hold garbage;
    - [Valid]  — every path to this stop has written it;
    - [Dead]   — definitely assigned, but no path from this stop reads it
      again, so the slot is free to be reused (and a reverse debugger may
      not bother restoring it).

    Facts are compressed into per-variable ranges [(lo, hi, fact)] over
    the function's stop indexes and stored on the symbol-table entry
    ([Sym.t.validity]); both emitters serialize them ([Psemit] as a
    [/validity] array on the symbol's dict, [Stabsemit] as [n_valid]
    records), [Symtab.validity_at] reads them back, and [Dbgcheck]
    recomputes the analysis independently to cross-check what was
    emitted.

    Soundness bias: untracked variables get {e no} ranges and are treated
    as printable everywhere; an unreachable stopping point is labeled
    [Uninit] (we never claim [Valid] on evidence the flow graph cannot
    support).  The dynamic differential in [test_validity] checks the
    bias holds on real traces: nothing the table calls [Valid] may ever
    be observed unwritten. *)

type fact = Uninit | Valid | Dead

let fact_code = function Uninit -> 0 | Valid -> 1 | Dead -> 2

let fact_of_code = function
  | 0 -> Some Uninit
  | 1 -> Some Valid
  | 2 -> Some Dead
  | _ -> None

let fact_name = function Uninit -> "uninit" | Valid -> "valid" | Dead -> "dead"

(** Gates the annotation pass in [Compile.compile]; the symbol-table
    bench toggles it to measure what the ranges cost. *)
let enabled = ref true

(** Compute validity ranges for one function: each tracked local paired
    with its compressed [(lo, hi, fact-code)] ranges covering stop
    indexes [0, nstops).  Pure — [annotate] is the writer. *)
let compute (fi : Sema.func_ir) : (Sym.t * (int * int * int) list) list =
  match fi.Sema.fi_debug with
  | None -> []
  | Some fd ->
      let cfg = Dataflow.cfg_of_body fi.Sema.fi_body in
      let stmts = cfg.Dataflow.stmts in
      let n = Array.length stmts in
      let vars = Dataflow.tracked fi.Sema.fi_body fd in
      let nstops =
        1
        + List.fold_left (fun m (sp : Sym.stop_point) -> max m sp.Sym.sp_id) (-1)
            fd.Sym.fd_stops
      in
      if n = 0 || vars = [] || nstops = 0 then []
      else begin
        let var_index = Hashtbl.create 16 in
        List.iteri (fun i (v, _) -> Hashtbl.replace var_index v i) vars;
        let idx_of v = Hashtbl.find_opt var_index v in
        let all_mask = (1 lsl List.length vars) - 1 in
        let in_state =
          Dataflow.solve_forward cfg Dataflow.may_mask ~entry:all_mask
            ~transfer:(fun _ stmt s -> Dataflow.uninit_transfer ~idx_of s stmt)
        in
        let live_in = Dataflow.liveness cfg ~idx_of in
        (* statement index of each stopping point, keyed by stop index *)
        let stop_stmt = Array.make nstops None in
        Array.iteri
          (fun i s ->
            match s with
            | Ir.Sstop (id, _) when id >= 0 && id < nstops -> stop_stmt.(id) <- Some i
            | _ -> ())
          stmts;
        let fact_at bit sid =
          match stop_stmt.(sid) with
          | None -> Uninit (* stop without code: claim nothing *)
          | Some i -> (
              match in_state.(i) with
              | None -> Uninit (* unreachable: never claim Valid *)
              | Some mask ->
                  if mask land (1 lsl bit) <> 0 then Uninit
                  else if live_in.(i) land (1 lsl bit) = 0 then Dead
                  else Valid)
        in
        List.mapi
          (fun bit (_, sym) ->
            let ranges = ref [] in
            let lo = ref 0 and cur = ref (fact_at bit 0) in
            for sid = 1 to nstops - 1 do
              let f = fact_at bit sid in
              if f <> !cur then begin
                ranges := (!lo, sid - 1, fact_code !cur) :: !ranges;
                lo := sid;
                cur := f
              end
            done;
            ranges := (!lo, nstops - 1, fact_code !cur) :: !ranges;
            (sym, List.rev !ranges))
          vars
      end

(** Write the computed ranges onto the symbol-table entries, to be picked
    up by both emitters. *)
let annotate (fi : Sema.func_ir) : unit =
  List.iter (fun ((s : Sym.t), ranges) -> s.Sym.validity <- ranges) (compute fi)

let annotate_unit (ui : Sema.unit_ir) : unit =
  if !enabled then List.iter annotate ui.Sema.ui_funcs
