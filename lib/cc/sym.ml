(** Compiler-side symbol and debug-information records.  These are what
    the PostScript and stabs emitters serialize, and what the paper calls
    "getting help from the compiler". *)

open Ldb_machine

(** Where a variable lives at run time. *)
type location_info =
  | In_reg of int          (** register-allocated ([register] storage class) *)
  | Frame of int           (** offset from the frame base (vfp on SIM-MIPS,
                               fp elsewhere); negative for locals *)
  | Global of string       (** external symbol: resolved through the loader
                               table by name *)
  | Anchored of int        (** static: word index in the unit's anchor *)

type kind = Kvar | Kparam | Kfunc

type t = {
  sid : int;                       (** S-number, unique within the unit *)
  sym_name : string;
  sym_ty : Ctype.t;
  kind : kind;
  spos : Lex.pos;
  sfile : string;
  mutable where : location_info option;
  mutable uplink : t option;       (** tree linking local scopes (Sec. 2) *)
  mutable validity : (int * int * int) list;
      (** per-stopping-point validity ranges [(lo, hi, fact)] keyed by stop
          index, covering [0, nstops); fact is 0 = uninitialized, 1 =
          valid, 2 = dead.  Empty for variables the analysis does not
          track (escapees, params, globals): the debugger treats those as
          always printable, which is the sound default. *)
}

(** One stopping point: a source location, an object-code location
    (reachable through the anchor), and the symbol-table entry visible
    there. *)
type stop_point = {
  sp_id : int;                     (** index within the function *)
  sp_pos : Lex.pos;
  sp_scope : t option;             (** innermost visible local symbol *)
  sp_label : string;               (** text label planted on the no-op *)
  mutable sp_anchor : int;         (** word index in the unit anchor *)
}

type func_debug = {
  fd_sym : t;
  fd_label : string;               (** linker symbol, e.g. _fib *)
  fd_params : t list;
  fd_locals : t list;              (** every local symbol, params included *)
  fd_stops : stop_point list;
  mutable fd_frame_size : int;     (** SIM-MIPS runtime-procedure-table datum;
                                       finalized by the code generator *)
  mutable fd_ra_offset : int;      (** where the return address is saved *)
  fd_saved_regs : (int * int) list;
      (** (register, frame offset of its save slot) for register variables:
          lets the debugger reuse aliases when walking the stack *)
}

type unit_debug = {
  ud_name : string;                (** source file name *)
  ud_arch : Arch.t;
  ud_anchor : string;              (** anchor symbol name *)
  mutable ud_anchor_slots : string list;  (** slot index -> target label (reversed) *)
  mutable ud_funcs : func_debug list;
  mutable ud_statics : t list;     (** file-scope statics *)
  mutable ud_globals : t list;     (** extern definitions in this unit *)
}

let anchor_slot_count ud = List.length ud.ud_anchor_slots

(** Reserve the next anchor slot for [label], returning its index. *)
let add_anchor_slot ud label =
  let idx = anchor_slot_count ud in
  ud.ud_anchor_slots <- label :: ud.ud_anchor_slots;
  idx

let anchor_slots_in_order ud = List.rev ud.ud_anchor_slots

(** Generated anchor-symbol name for a unit, following the paper's
    _stanchor__V<hash> style. *)
let anchor_name unit_name =
  let h = Hashtbl.hash unit_name land 0xffffff in
  Printf.sprintf "_stanchor__V%06x_%s"
    h
    (String.map (fun c -> if c = '.' || c = '/' then '_' else c) unit_name)

let sname s = Printf.sprintf "S%d" s.sid
