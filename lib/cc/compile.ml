(** The compiler facade: C source to an object file.

    [compile ~arch ~debug ~file src] runs the full pipeline: parse,
    semantic analysis / IR generation, per-target code generation,
    SIM-MIPS delay-slot scheduling, anchor emission, and (with [-g])
    PostScript and stabs symbol tables. *)

open Ldb_machine

exception Error of string

let compile ?(debug = true) ?(defer = true) ?(compress = false) ?(optimize = true) ~(arch : Arch.t)
    ~(file : string) (src : string) : Asm.t =
  let target = Target.of_arch arch in
  let ast =
    try Parse.parse_unit ~file ~arch src with
    | Parse.Error (m, p) -> raise (Error (Printf.sprintf "%s:%d:%d: %s" file p.Lex.line p.Lex.col m))
    | Lex.Error (m, p) -> raise (Error (Printf.sprintf "%s:%d:%d: %s" file p.Lex.line p.Lex.col m))
  in
  let ui =
    try Sema.translate ~arch ~debug ast
    with Sema.Error (m, p) ->
      raise (Error (Printf.sprintf "%s:%d:%d: %s" file p.Lex.line p.Lex.col m))
  in
  (try Irlint.run ~file ui
   with Irlint.Failed fs ->
     raise (Error (String.concat "\n" (List.map Irlint.finding_to_string fs))));
  Validity.annotate_unit ui;
  let unit_tag =
    String.map (fun c -> if c = '.' || c = '/' || c = '-' then '_' else c) file
  in
  let text = ref [] in
  let pool = ref [] in
  let frame_sizes = Hashtbl.create 8 in
  List.iter
    (fun fi ->
      let t, d, fsize =
        try Gen.gen_func target ~unit_tag fi with Gen.Error m -> raise (Error m)
      in
      Hashtbl.replace frame_sizes fi.Sema.fi_label fsize;
      (* the generator finalizes the frame plan; propagate it to the
         debug information so the runtime procedure table and the stack
         walker agree *)
      (match fi.Sema.fi_debug with
      | Some fd ->
          fd.Sym.fd_frame_size <- fsize;
          fd.Sym.fd_ra_offset <- fsize - 4
      | None -> ());
      text := !text @ t;
      pool := !pool @ d)
    ui.Sema.ui_funcs;
  (* peephole cleanup, before scheduling so delay-slot guarantees hold *)
  let text = ref (if optimize then fst (Peephole.run target !text) else !text) in
  (* SIM-MIPS: repair load-delay hazards *)
  let text, _sched_stats =
    if Arch.has_load_delay arch then begin
      let t, st = Sched.schedule_filled !text in
      (match Sched.verify t with
      | None -> ()
      | Some i -> raise (Error (Printf.sprintf "%s: scheduler left a hazard at %d" file i)));
      (t, Some st)
    end
    else (!text, None)
  in
  (* anchor symbol: one relocated word per static / stopping point *)
  let anchor_data =
    match ui.Sema.ui_debug with
    | Some ud ->
        let slots = Sym.anchor_slots_in_order ud in
        if slots = [] then []
        else
          (Asm.Dalign 4 :: Asm.Dlabel ud.Sym.ud_anchor
          :: List.map (fun l -> Asm.Dwordsym (l, 0)) slots)
    | None -> []
  in
  let ps = Option.map (fun ud -> Psemit.emit_unit ~defer ~compress ud) ui.Sema.ui_debug in
  let stabs = match ui.Sema.ui_debug with Some ud -> Stabsemit.emit_unit ud | None -> "" in
  let rpt =
    List.map
      (fun fi ->
        let fsize =
          match Hashtbl.find_opt frame_sizes fi.Sema.fi_label with
          | Some s -> s
          | None -> fi.Sema.fi_frame_size
        in
        (fi.Sema.fi_label, fsize, fsize - 4))
      ui.Sema.ui_funcs
  in
  {
    Asm.o_arch = arch;
    o_unit = file;
    o_text = text;
    o_data = ui.Sema.ui_data @ !pool @ anchor_data;
    o_globals = ui.Sema.ui_globals;
    o_debug = ui.Sema.ui_debug;
    o_ps = ps;
    o_stabs = stabs;
    o_rpt = rpt;
  }

(** Instruction count and encoded size of an object's text (benchmarks). *)
let text_stats (o : Asm.t) =
  let target = Target.of_arch o.Asm.o_arch in
  (Asm.insn_count o.Asm.o_text, Asm.text_size target o.Asm.o_text)
