(** Semantic analysis and IR generation.

    Translates the AST into lcc-style IR trees, building the debug
    information as it goes: S-numbered symbol entries linked into an uplink
    tree (Fig. 2), stopping points before every statement and at each
    clause of a [for] (Fig. 1), anchor slots for statics and stopping
    points, and register assignments for [register]-class variables.

    The expression-translation core is parameterized by a symbol-lookup
    function so the expression server (Sec. 3) can reuse it with symbols
    reconstructed from the debugger's PostScript symbol tables. *)

open Ldb_machine

exception Error of string * Lex.pos

let fail pos fmt = Fmt.kstr (fun s -> raise (Error (s, pos))) fmt

(* --- compile-time addresses -------------------------------------------- *)

type caddr =
  | Creg of int       (** register variable *)
  | Cframe of int     (** frame-base-relative *)
  | Clabel of string  (** link-time label *)
  | Cabs of int32     (** absolute address (expression server) *)

type binding = { b_ty : Ctype.t; b_addr : caddr }

(* --- environments -------------------------------------------------------- *)

type genv = {
  arch : Arch.t;
  target : Target.t;
  unit_name : string;
  debug : bool;
  mutable sid : int;
  mutable nlabel : int;
  mutable nstatic : int;
  funcs : (string, Ctype.t) Hashtbl.t;  (** function name -> type *)
  globals : (string, binding * Sym.t option) Hashtbl.t;
  mutable data : Asm.data_item list;  (** reversed *)
  mutable strings : (string, string) Hashtbl.t;  (** content -> label *)
  ud : Sym.unit_debug;
}

let unit_tag g =
  String.map (fun c -> if c = '.' || c = '/' || c = '-' then '_' else c) g.unit_name

let fresh_label g =
  g.nlabel <- g.nlabel + 1;
  Printf.sprintf "L$%s$%d" (unit_tag g) g.nlabel

let fresh_sid g =
  g.sid <- g.sid + 1;
  g.sid

let mangle name = "_" ^ name

let static_label g name =
  g.nstatic <- g.nstatic + 1;
  Printf.sprintf "_%s$%s$%d" name (unit_tag g) g.nstatic

let string_label g s =
  match Hashtbl.find_opt g.strings s with
  | Some l -> l
  | None ->
      let l = fresh_label g in
      Hashtbl.replace g.strings s l;
      g.data <- Asm.Dbytes (s ^ "\000") :: Asm.Dlabel l :: Asm.Dalign 4 :: g.data;
      l

type scope_entry = { se_name : string; se_binding : binding; se_sym : Sym.t option }

type fenv = {
  g : genv;
  fname : string;
  ret_ty : Ctype.t;
  mutable frame_low : int;  (** lowest (most negative) allocated frame offset *)
  local_base : int;         (** offsets below this are free for locals *)
  mutable code : Ir.stmt list;  (** reversed *)
  mutable stops : Sym.stop_point list;  (** reversed *)
  mutable nstop : int;
  mutable scopes : scope_entry list list;
  mutable uplink_tail : Sym.t option;
  mutable breaks : string list;
  mutable continues : string list;
  mutable regpool : int list;  (** unassigned register-variable registers *)
  mutable saved_regs : (int * int) list;  (** (reg, save-slot frame offset) *)
  mutable param_homes : [ `Stack | `Slot of int | `Reg of int ] list;  (** per param *)
}

let emit f s = f.code <- s :: f.code

let alloc_slot f size align =
  let size = max size 1 in
  let off = f.frame_low - size in
  let off = -((-off + align - 1) / align * align) in
  f.frame_low <- off;
  off

(* --- symbol lookup -------------------------------------------------------- *)

let lookup_scope f name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
        match List.find_opt (fun e -> e.se_name = name) frame with
        | Some e -> Some e
        | None -> go rest)
  in
  go f.scopes

let lookup_any f name : binding option =
  match lookup_scope f name with
  | Some e -> Some e.se_binding
  | None -> (
      match Hashtbl.find_opt f.g.globals name with
      | Some (b, _) -> Some b
      | None -> None)

(* --- constant folding ----------------------------------------------------- *)

type const = Cint of int32 | Cflt of float

let rec const_eval (arch : Arch.t) (e : Ast.expr) : const option =
  let open Ast in
  match e with
  | Eint (n, _) -> Some (Cint n)
  | Efloat (f, _) -> Some (Cflt f)
  | Echar (c, _) -> Some (Cint (Int32.of_int (Char.code c)))
  | Eun ("-", e, _) -> (
      match const_eval arch e with
      | Some (Cint n) -> Some (Cint (Int32.neg n))
      | Some (Cflt f) -> Some (Cflt (-.f))
      | None -> None)
  | Eun ("~", e, _) -> (
      match const_eval arch e with
      | Some (Cint n) -> Some (Cint (Int32.lognot n))
      | _ -> None)
  | Ebin (op, a, b, _) -> (
      match (const_eval arch a, const_eval arch b) with
      | Some (Cint x), Some (Cint y) -> (
          let f g = Some (Cint (g x y)) in
          match op with
          | "+" -> f Int32.add
          | "-" -> f Int32.sub
          | "*" -> f Int32.mul
          | "/" -> if y = 0l then None else f Int32.div
          | "%" -> if y = 0l then None else f Int32.rem
          | "&" -> f Int32.logand
          | "|" -> f Int32.logor
          | "^" -> f Int32.logxor
          | "<<" -> Some (Cint (Int32.shift_left x (Int32.to_int y land 31)))
          | ">>" -> Some (Cint (Int32.shift_right x (Int32.to_int y land 31)))
          | _ -> None)
      | Some (Cflt x), Some (Cflt y) -> (
          match op with
          | "+" -> Some (Cflt (x +. y))
          | "-" -> Some (Cflt (x -. y))
          | "*" -> Some (Cflt (x *. y))
          | "/" -> Some (Cflt (x /. y))
          | _ -> None)
      | _ -> None)
  | Esizeof_t (t, _) -> Some (Cint (Int32.of_int (Ctype.size arch t)))
  | _ -> None

(* --- expression translation core ----------------------------------------- *)

(** Lvalues: either a memory address expression or a register variable. *)
type lv = Lmem of Ir.exp * Ctype.t | Lreg of int * Ctype.t

(** Context for expression translation: the compiler instantiates it from
    a [fenv]; the expression server instantiates it with debugger-supplied
    bindings and no statement buffer (no short-circuit temporaries). *)
type ectx = {
  e_arch : Arch.t;
  e_lookup : string -> binding option;
  e_func_ty : string -> Ctype.t option;
  e_string : string -> caddr;  (** string literal -> address *)
  e_emit : (Ir.stmt -> unit) option;  (** None in the expression server *)
  e_temp : (int -> int -> int) option;  (** alloc_slot for short circuits *)
  e_label : (unit -> string) option;
}

let irty ctx t = Ir.of_ctype ctx.e_arch t

let exp_of_caddr = function
  | Creg _ -> assert false
  | Cframe off -> Ir.Addrl off
  | Clabel l -> Ir.Addrg l
  | Cabs a -> Ir.Cnst (Ir.P4, a)

(** Widen a loaded/computed value to its computation type and convert
    [from] C type to [to_] C type. *)
let rec convert _ctx (e : Ir.exp) (from : Ctype.t) (to_ : Ctype.t) pos : Ir.exp =
  if Ctype.equal from to_ then e
  else
    let open Ctype in
    match (from, to_) with
    | (Char | Short | Int | Unsigned), (Char | Short | Int | Unsigned) ->
        (* computation is 32-bit; narrowing happens at store *)
        e
    | (Char | Short | Int), (Float | Double | LongDouble) -> Ir.Cvt (I4, F8, e)
    | Unsigned, (Float | Double | LongDouble) -> Ir.Cvt (U4, F8, e)
    | (Float | Double | LongDouble), (Char | Short | Int) -> Ir.Cvt (F8, I4, e)
    | (Float | Double | LongDouble), Unsigned -> Ir.Cvt (F8, U4, e)
    | (Float | Double | LongDouble), (Float | Double | LongDouble) -> e
    | (Ptr _ | Array _ | Func _), (Ptr _ | Func _) -> e
    | (Ptr _ | Array _), (Int | Unsigned) -> e
    | (Int | Unsigned), Ptr _ -> e
    | _ -> fail pos "cannot convert %s to %s" (Ctype.to_string from) (Ctype.to_string to_)

(** Translate an AST expression to an IR value, returning its C type. *)
and rvalue ctx (e : Ast.expr) : Ir.exp * Ctype.t =
  let open Ast in
  match e with
  | Eint (n, _) -> (Ir.Cnst (Ir.I4, n), Ctype.Int)
  | Efloat (f, _) -> (Ir.Cnstf f, Ctype.Double)
  | Echar (c, _) -> (Ir.Cnst (Ir.I4, Int32.of_int (Char.code c)), Ctype.Int)
  | Estr (s, _) -> (exp_of_caddr (ctx.e_string s), Ctype.Ptr Ctype.Char)
  | Esizeof_t (t, _) -> (Ir.Cnst (Ir.I4, Int32.of_int (Ctype.size ctx.e_arch t)), Ctype.Int)
  | Esizeof_e (e, p) ->
      let _, t = rvalue ctx e in
      ignore p;
      (Ir.Cnst (Ir.I4, Int32.of_int (Ctype.size ctx.e_arch t)), Ctype.Int)
  | Ecast (t, e, p) ->
      let v, ft = rvalue ctx e in
      (convert ctx v ft t p, t)
  | Eun ("-", e, p) -> (
      let v, t = rvalue ctx e in
      match t with
      | t when Ctype.is_float t -> (Ir.Bin (Ir.F8, Ir.Sub, Ir.Cnstf 0.0, v), Ctype.Double)
      | t when Ctype.is_integer t -> (Ir.Bin (Ir.I4, Ir.Sub, Ir.Cnst (Ir.I4, 0l), v), Ctype.Int)
      | _ -> fail p "bad operand to unary -")
  | Eun ("~", e, p) -> (
      let v, t = rvalue ctx e in
      if Ctype.is_integer t then (Ir.Bin (Ir.I4, Ir.Bxor, v, Ir.Cnst (Ir.I4, -1l)), Ctype.Int)
      else fail p "bad operand to ~")
  | Eun ("!", e, p) ->
      let v, t = rvalue ctx e in
      if not (Ctype.is_scalar t) then fail p "bad operand to !";
      let ty = if Ctype.is_float t then Ir.F8 else Ir.I4 in
      let zero = if Ctype.is_float t then Ir.Cnstf 0.0 else Ir.Cnst (Ir.I4, 0l) in
      (Ir.Cmp (ty, Ir.Req, v, zero), Ctype.Int)
  | Eun ("*", e, p) -> (
      let v, t = rvalue ctx e in
      match t with
      | Ctype.Ptr inner | Ctype.Array (inner, _) -> load ctx v inner p
      | _ -> fail p "dereference of non-pointer")
  | Eun ("&", e, p) -> (
      match lvalue ctx e with
      | Lmem (addr, t) -> (addr, Ctype.Ptr t)
      | Lreg _ -> fail p "cannot take the address of a register variable")
  | Eun (op, _, p) -> fail p "bad unary operator %s" op
  | Eid (name, p) -> (
      match ctx.e_lookup name with
      | Some { b_ty; b_addr } -> (
          match b_addr with
          | Creg r -> (Ir.Reguse r, b_ty)
          | addr -> load_binding ctx addr b_ty p)
      | None -> (
          match ctx.e_func_ty name with
          | Some ft -> (Ir.Addrg (mangle name), ft)
          | None -> fail p "undeclared identifier %s" name))
  | Eindex (a, i, p) -> (
      let av, at = rvalue ctx a in
      let iv, it = rvalue ctx i in
      if not (Ctype.is_integer it) then fail p "array index is not an integer";
      match at with
      | Ctype.Ptr inner | Ctype.Array (inner, _) ->
          let scaled = scale ctx iv (Ctype.size ctx.e_arch inner) in
          load ctx (Ir.Bin (Ir.P4, Ir.Add, av, scaled)) inner p
      | _ -> fail p "indexing a non-array")
  | Efield (_, _, p) | Earrow (_, _, p) -> (
      match lvalue ctx e with
      | Lmem (addr, t) -> load ctx addr t p
      | Lreg (r, t) -> (Ir.Reguse r, t))
  | Ebin (("&&" | "||"), _, _, p) -> short_circuit ctx e p
  | Ebin (op, a, b, p) when List.mem op [ "=="; "!="; "<"; "<="; ">"; ">=" ] ->
      let v, _ = comparison ctx op a b p in
      (v, Ctype.Int)
  | Ebin (op, a, b, p) -> (
      let av, at = rvalue ctx a in
      let bv, bt = rvalue ctx b in
      binary ctx op av at bv bt p)
  | Eassign (op, lhs, rhs, p) -> assign ctx op lhs rhs p
  | Econd (c, a, b, p) -> conditional ctx c a b p
  | Eincr (pre, delta, e, p) -> incr_decr ctx pre delta e p
  | Ecall (f, args, p) -> call ctx f args p

and load_binding ctx addr ty p =
  match ty with
  | Ctype.Array _ | Ctype.Func _ -> (exp_of_caddr addr, ty)
  | _ -> load ctx (exp_of_caddr addr) ty p

(** Load a value of C type [t] from [addr]. *)
and load ctx (addr : Ir.exp) (t : Ctype.t) p : Ir.exp * Ctype.t =
  match t with
  | Ctype.Array _ | Ctype.Func _ -> (addr, t)  (* decay *)
  | Ctype.Struct _ -> (addr, t)  (* aggregates by address *)
  | Ctype.Void -> fail p "void value"
  | _ -> (Ir.Indir (irty ctx t, addr), t)

and scale _ctx (idx : Ir.exp) size =
  if size = 1 then idx
  else Ir.Bin (Ir.I4, Ir.Mul, idx, Ir.Cnst (Ir.I4, Int32.of_int size))

(** Arithmetic and bitwise binary operators (comparisons handled apart). *)
and binary ctx op av at bv bt p : Ir.exp * Ctype.t =
  let open Ctype in
  let arith_op =
    match op with
    | "+" -> Some Ir.Add
    | "-" -> Some Ir.Sub
    | "*" -> Some Ir.Mul
    | "/" -> Some Ir.Div
    | "%" -> Some Ir.Rem
    | _ -> None
  in
  let bit_op =
    match op with
    | "&" -> Some Ir.Band
    | "|" -> Some Ir.Bor
    | "^" -> Some Ir.Bxor
    | "<<" -> Some Ir.Shl
    | ">>" -> Some Ir.Shr
    | _ -> None
  in
  match (arith_op, bit_op) with
  | Some aop, _ -> (
      match (at, bt) with
      | t1, t2 when is_pointer t1 && is_integer t2 && (op = "+" || op = "-") ->
          let elem = match t1 with Ptr e | Array (e, _) -> e | _ -> assert false in
          let scaled = scale ctx bv (Ctype.size ctx.e_arch elem) in
          (Ir.Bin (Ir.P4, aop, av, scaled), Ptr elem)
      | t1, t2 when is_integer t1 && is_pointer t2 && op = "+" ->
          let elem = match t2 with Ptr e | Array (e, _) -> e | _ -> assert false in
          let scaled = scale ctx av (Ctype.size ctx.e_arch elem) in
          (Ir.Bin (Ir.P4, Ir.Add, bv, scaled), Ptr elem)
      | t1, t2 when is_pointer t1 && is_pointer t2 && op = "-" ->
          let elem = match t1 with Ptr e | Array (e, _) -> e | _ -> assert false in
          let diff = Ir.Bin (Ir.I4, Ir.Sub, av, bv) in
          ( Ir.Bin (Ir.I4, Ir.Div, diff, Ir.Cnst (Ir.I4, Int32.of_int (Ctype.size ctx.e_arch elem))),
            Int )
      | t1, t2 when is_arith t1 && is_arith t2 ->
          let rt = usual_arith t1 t2 in
          if is_float rt then
            ( Ir.Bin (Ir.F8, aop, convert ctx av t1 rt p, convert ctx bv t2 rt p),
              Double )
          else
            let ity = if equal rt Unsigned then Ir.U4 else Ir.I4 in
            (Ir.Bin (ity, aop, av, bv), rt)
      | _ -> fail p "bad operands to %s" op)
  | None, Some bop ->
      if is_integer at && is_integer bt then
        let rt = usual_arith at bt in
        let ity = if equal rt Unsigned then Ir.U4 else Ir.I4 in
        (Ir.Bin (ity, bop, av, bv), rt)
      else fail p "bad operands to %s" op
  | None, None -> fail p "unknown binary operator %s" op

and comparison ctx op a b p : Ir.exp * Ctype.t =
  let av, at = rvalue ctx a in
  let bv, bt = rvalue ctx b in
  let rel =
    match op with
    | "==" -> Ir.Req
    | "!=" -> Ir.Rne
    | "<" -> Ir.Rlt
    | "<=" -> Ir.Rle
    | ">" -> Ir.Rgt
    | ">=" -> Ir.Rge
    | _ -> assert false
  in
  let open Ctype in
  if is_pointer at || is_pointer bt then (Ir.Cmp (Ir.U4, rel, av, bv), Int)
  else if is_arith at && is_arith bt then begin
    let ct = usual_arith at bt in
    if is_float ct then
      (Ir.Cmp (Ir.F8, rel, convert ctx av at ct p, convert ctx bv bt ct p), Int)
    else
      let ity = if equal ct Unsigned then Ir.U4 else Ir.I4 in
      (Ir.Cmp (ity, rel, av, bv), Int)
  end
  else fail p "bad operands to %s" op

(** Short-circuit && / || in value position: lowered through a temporary
    frame slot with branches (requires a statement buffer). *)
and short_circuit ctx e p : Ir.exp * Ctype.t =
  match (ctx.e_emit, ctx.e_temp, ctx.e_label) with
  | Some emit, Some temp, Some label ->
      let slot = temp 4 4 in
      let l_true = label () and l_false = label () and l_done = label () in
      cond_jump ctx e ~iftrue:l_true ~iffalse:l_false;
      emit (Ir.Slabel l_true);
      emit (Ir.Sexp (Ir.Asgn (Ir.I4, Ir.Addrl slot, Ir.Cnst (Ir.I4, 1l))));
      emit (Ir.Sjump l_done);
      emit (Ir.Slabel l_false);
      emit (Ir.Sexp (Ir.Asgn (Ir.I4, Ir.Addrl slot, Ir.Cnst (Ir.I4, 0l))));
      emit (Ir.Slabel l_done);
      (Ir.Indir (Ir.I4, Ir.Addrl slot), Ctype.Int)
  | _ ->
      (* expression server: evaluate without short circuit *)
      let op = match e with Ast.Ebin (op, _, _, _) -> op | _ -> assert false in
      let a, b = match e with Ast.Ebin (_, a, b, _) -> (a, b) | _ -> assert false in
      let av, at = rvalue ctx a in
      let bv, bt = rvalue ctx b in
      let boolize v t =
        let ty = if Ctype.is_float t then Ir.F8 else Ir.I4 in
        let zero = if Ctype.is_float t then Ir.Cnstf 0.0 else Ir.Cnst (Ir.I4, 0l) in
        Ir.Cmp (ty, Ir.Rne, v, zero)
      in
      let ba = boolize av at and bb = boolize bv bt in
      ignore p;
      let bop = if op = "&&" then Ir.Band else Ir.Bor in
      (Ir.Bin (Ir.I4, bop, ba, bb), Ctype.Int)

and conditional ctx c a b p : Ir.exp * Ctype.t =
  match (ctx.e_emit, ctx.e_temp, ctx.e_label) with
  | Some emit, Some temp, Some label ->
      (* evaluate one arm into a temporary slot *)
      let l_true = label () and l_false = label () and l_done = label () in
      cond_jump ctx c ~iftrue:l_true ~iffalse:l_false;
      emit (Ir.Slabel l_true);
      let av, at = rvalue ctx a in
      let is_f = Ctype.is_float at in
      let slot = temp (if is_f then 8 else 4) (if is_f then 8 else 4) in
      let sty = if is_f then Ir.F8 else if Ctype.is_pointer at then Ir.P4 else Ir.I4 in
      emit (Ir.Sexp (Ir.Asgn (sty, Ir.Addrl slot, av)));
      emit (Ir.Sjump l_done);
      emit (Ir.Slabel l_false);
      let bv, bt = rvalue ctx b in
      let bv = convert ctx bv bt at p in
      emit (Ir.Sexp (Ir.Asgn (sty, Ir.Addrl slot, bv)));
      emit (Ir.Slabel l_done);
      (Ir.Indir (sty, Ir.Addrl slot), at)
  | _ -> fail p "conditional expressions are not supported here"

and assign ctx op lhs rhs p : Ir.exp * Ctype.t =
  let l = lvalue ctx lhs in
  let lty = match l with Lmem (_, t) | Lreg (_, t) -> t in
  let value =
    if op = "=" then begin
      let rv, rt = rvalue ctx rhs in
      convert ctx rv rt lty p
    end
    else begin
      (* op= : load, combine, store *)
      let binop = String.sub op 0 (String.length op - 1) in
      let cur, _ =
        match l with
        | Lmem (addr, t) -> load ctx addr t p
        | Lreg (r, t) -> (Ir.Reguse r, t)
      in
      let rv, rt = rvalue ctx rhs in
      let v, vt = binary ctx binop cur lty rv rt p in
      convert ctx v vt lty p
    end
  in
  match l with
  | Lreg (r, t) -> (Ir.Regasgn (r, value), t)
  | Lmem (addr, t) -> (Ir.Asgn (irty ctx t, addr, value), t)

and incr_decr ctx pre delta e p : Ir.exp * Ctype.t =
  let l = lvalue ctx e in
  let lty = match l with Lmem (_, t) | Lreg (_, t) -> t in
  let step =
    match lty with
    | Ctype.Ptr inner -> Ctype.size ctx.e_arch inner
    | t when Ctype.is_arith t -> 1
    | _ -> fail p "bad operand to ++/--"
  in
  let delta32 = Int32.of_int (delta * step) in
  let cur =
    match l with
    | Lmem (addr, t) -> fst (load ctx addr t p)
    | Lreg (r, _) -> Ir.Reguse r
  in
  let updated =
    if Ctype.is_float lty then
      Ir.Bin (Ir.F8, Ir.Add, cur, Ir.Cnstf (float_of_int (delta * step)))
    else
      let ty = if Ctype.is_pointer lty then Ir.P4 else Ir.I4 in
      Ir.Bin (ty, Ir.Add, cur, Ir.Cnst (Ir.I4, delta32))
  in
  let stored =
    match l with
    | Lreg (r, _) -> Ir.Regasgn (r, updated)
    | Lmem (addr, t) -> Ir.Asgn (irty ctx t, addr, updated)
  in
  if pre then (stored, lty)
  else begin
    (* post-increment in a value position: emit the update as a side
       effect after saving the old value in a temporary *)
    match (ctx.e_emit, ctx.e_temp) with
    | Some emit, Some temp ->
        let is_f = Ctype.is_float lty in
        let slot = temp (if is_f then 8 else 4) (if is_f then 8 else 4) in
        let sty = if is_f then Ir.F8 else if Ctype.is_pointer lty then Ir.P4 else Ir.I4 in
        emit (Ir.Sexp (Ir.Asgn (sty, Ir.Addrl slot, cur)));
        emit (Ir.Sexp stored);
        (Ir.Indir (sty, Ir.Addrl slot), lty)
    | _ ->
        (* expression server: the updated value is close enough only for
           statement-position uses; treat as pre *)
        (stored, lty)
  end

and call ctx f args p : Ir.exp * Ctype.t =
  let fname, fty, faddr =
    match f with
    | Ast.Eid (name, _) -> (
        match ctx.e_lookup name with
        | Some { b_ty = Ctype.Ptr (Ctype.Func _ as ft); b_addr } -> (None, ft, Some (fst (load_binding ctx b_addr (Ctype.Ptr ft) p)))
        | Some { b_ty = Ctype.Func _ as ft; b_addr = Clabel l } -> (Some l, ft, None)
        | Some _ -> fail p "%s is not a function" name
        | None -> (
            match ctx.e_func_ty name with
            | Some ft -> (Some (mangle name), ft, None)
            | None ->
                (* implicit declaration returning int *)
                (Some (mangle name), Ctype.Func (Ctype.Int, []), None)))
    | _ -> (
        let v, t = rvalue ctx f in
        match t with
        | Ctype.Ptr (Ctype.Func _ as ft) | (Ctype.Func _ as ft) -> (None, ft, Some v)
        | _ -> fail p "call of non-function")
  in
  let ret, ptys = match fty with Ctype.Func (r, a) -> (r, a) | _ -> (Ctype.Int, []) in
  let is_printf = fname = Some "_printf" in
  let avs =
    List.mapi
      (fun i a ->
        let v, t = rvalue ctx a in
        (* default promotions: float -> double; declared param types apply
           when known *)
        match List.nth_opt ptys i with
        | Some pt when not is_printf -> convert ctx v t pt p
        | _ ->
            if Ctype.equal t Ctype.Float then v (* already computed as F8 *)
            else v)
      args
  in
  let rty = irty ctx ret in
  match (fname, faddr) with
  | Some l, _ -> (Ir.Call (rty, l, avs), ret)
  | None, Some fv -> (Ir.Callind (rty, fv, avs), ret)
  | None, None -> assert false

(** Translate to an lvalue. *)
and lvalue ctx (e : Ast.expr) : lv =
  let open Ast in
  match e with
  | Eid (name, p) -> (
      match ctx.e_lookup name with
      | Some { b_ty; b_addr = Creg r } -> Lreg (r, b_ty)
      | Some { b_ty; b_addr } -> Lmem (exp_of_caddr b_addr, b_ty)
      | None -> fail p "undeclared identifier %s" name)
  | Eun ("*", e, p) -> (
      let v, t = rvalue ctx e in
      match t with
      | Ctype.Ptr inner | Ctype.Array (inner, _) -> Lmem (v, inner)
      | _ -> fail p "dereference of non-pointer")
  | Eindex (a, i, p) -> (
      let av, at = rvalue ctx a in
      let iv, _ = rvalue ctx i in
      match at with
      | Ctype.Ptr inner | Ctype.Array (inner, _) ->
          Lmem (Ir.Bin (Ir.P4, Ir.Add, av, scale ctx iv (Ctype.size ctx.e_arch inner)), inner)
      | _ -> fail p "indexing a non-array")
  | Efield (b, fld, p) -> (
      match lvalue ctx b with
      | Lmem (addr, Ctype.Struct sd) -> (
          match Ctype.field sd fld with
          | Some f ->
              Lmem (Ir.Bin (Ir.P4, Ir.Add, addr, Ir.Cnst (Ir.I4, Int32.of_int f.Ctype.foffset)), f.Ctype.fty)
          | None -> fail p "struct %s has no field %s" sd.Ctype.sname fld)
      | _ -> fail p ". applied to a non-struct")
  | Earrow (b, fld, p) -> (
      let v, t = rvalue ctx b in
      match t with
      | Ctype.Ptr (Ctype.Struct sd) -> (
          match Ctype.field sd fld with
          | Some f ->
              Lmem (Ir.Bin (Ir.P4, Ir.Add, v, Ir.Cnst (Ir.I4, Int32.of_int f.Ctype.foffset)), f.Ctype.fty)
          | None -> fail p "struct %s has no field %s" sd.Ctype.sname fld)
      | _ -> fail p "-> applied to a non-struct-pointer")
  | e -> fail (expr_pos e) "expression is not an lvalue"

(** Branch on a condition (used by if/while/for and short circuits). *)
and cond_jump ctx (e : Ast.expr) ~iftrue ~iffalse =
  let emit = match ctx.e_emit with Some f -> f | None -> assert false in
  let open Ast in
  match e with
  | Ebin ("&&", a, b, _) ->
      let mid = (match ctx.e_label with Some f -> f () | None -> assert false) in
      cond_jump ctx a ~iftrue:mid ~iffalse;
      emit (Ir.Slabel mid);
      cond_jump ctx b ~iftrue ~iffalse
  | Ebin ("||", a, b, _) ->
      let mid = (match ctx.e_label with Some f -> f () | None -> assert false) in
      cond_jump ctx a ~iftrue ~iffalse:mid;
      emit (Ir.Slabel mid);
      cond_jump ctx b ~iftrue ~iffalse
  | Eun ("!", e, _) -> cond_jump ctx e ~iftrue:iffalse ~iffalse:iftrue
  | Ebin (op, a, b, p) when List.mem op [ "=="; "!="; "<"; "<="; ">"; ">=" ] ->
      let av, at = rvalue ctx a in
      let bv, bt = rvalue ctx b in
      let rel =
        match op with
        | "==" -> Ir.Req | "!=" -> Ir.Rne | "<" -> Ir.Rlt
        | "<=" -> Ir.Rle | ">" -> Ir.Rgt | ">=" -> Ir.Rge
        | _ -> assert false
      in
      let open Ctype in
      let ty, av, bv =
        if is_pointer at || is_pointer bt then (Ir.U4, av, bv)
        else
          let ct = usual_arith at bt in
          if is_float ct then (Ir.F8, convert ctx av at ct p, convert ctx bv bt ct p)
          else if equal ct Unsigned then (Ir.U4, av, bv)
          else (Ir.I4, av, bv)
      in
      emit (Ir.Scjump (ty, rel, av, bv, iftrue));
      emit (Ir.Sjump iffalse)
  | e ->
      let v, t = rvalue ctx e in
      let ty = if Ctype.is_float t then Ir.F8 else Ir.I4 in
      let zero = if Ctype.is_float t then Ir.Cnstf 0.0 else Ir.Cnst (Ir.I4, 0l) in
      emit (Ir.Scjump (ty, Ir.Rne, v, zero, iftrue));
      emit (Ir.Sjump iffalse)

(* --- statement and unit translation --------------------------------------- *)

type func_ir = {
  fi_label : string;
  fi_name : string;
  fi_body : Ir.stmt list;
  fi_locals_bytes : int;  (** size of the locals area below the frame base *)
  fi_frame_size : int;    (** SIM-MIPS frame size (locals + ra slot, aligned) *)
  fi_reg_param_stores : (int * int) list;
      (** prologue stores: (incoming arg register, frame offset of home) *)
  fi_saved_regs : (int * int) list;
      (** register variables: (register, frame offset of save slot) *)
  fi_ret_float : bool;
  fi_debug : Sym.func_debug option;
}

type unit_ir = {
  ui_name : string;
  ui_arch : Arch.t;
  ui_funcs : func_ir list;
  ui_data : Asm.data_item list;
  ui_globals : string list;
  ui_debug : Sym.unit_debug option;
}

(** Frame home (offset from the frame base) of argument unit [u]:
    arguments are always fully materialized in the caller's outgoing area
    ("home area", as on the real MIPS), so every parameter has a
    contiguous memory home. *)
let arg_home_offset (target : Target.t) u =
  match target.Target.arch with
  | Arch.Mips -> 4 * u                 (* vfp + 4u *)
  | Arch.Sparc -> 4 + (4 * u)          (* above the pushed fp *)
  | Arch.M68k | Arch.Vax -> 8 + (4 * u) (* above pushed fp and return addr *)

let ectx_of_fenv (f : fenv) : ectx =
  {
    e_arch = f.g.arch;
    e_lookup = (fun n -> lookup_any f n);
    e_func_ty = (fun n -> Hashtbl.find_opt f.g.funcs n);
    e_string = (fun s -> Clabel (string_label f.g s));
    e_emit = Some (emit f);
    e_temp = Some (fun size align -> alloc_slot f size align);
    e_label = Some (fun () -> fresh_label f.g);
  }

let stop_label g fname id = Printf.sprintf "__stop$%s$%s$%d" (unit_tag g) fname id

(** Record a stopping point before the construct at [pos]. *)
let stop_point f (pos : Lex.pos) =
  if f.g.debug then begin
    let id = f.nstop in
    f.nstop <- id + 1;
    let label = stop_label f.g f.fname id in
    let anchor = Sym.add_anchor_slot f.g.ud label in
    let sp =
      { Sym.sp_id = id; sp_pos = pos; sp_scope = f.uplink_tail; sp_label = label;
        sp_anchor = anchor }
    in
    f.stops <- sp :: f.stops;
    emit f (Ir.Sstop (id, label))
  end

let new_sym f name ty kind pos where =
  let s =
    { Sym.sid = fresh_sid f.g; sym_name = name; sym_ty = ty; kind; spos = pos;
      sfile = f.g.unit_name; where = Some where; uplink = f.uplink_tail;
      validity = [] }
  in
  f.uplink_tail <- Some s;
  s

(** Emit initialized data for a global or static definition. *)
let emit_data g label (ty : Ctype.t) (init : Ast.expr option) export =
  let size = Ctype.size g.arch ty in
  let items = ref [ Asm.Dlabel label; Asm.Dalign (max 4 (Ctype.align g.arch ty)) ] in
  (* items are collected reversed relative to final data order, because
     g.data is reversed *)
  (match init with
  | None -> items := Asm.Dspace size :: !items
  | Some e -> (
      match (ty, e) with
      | Ctype.Ptr Ctype.Char, Ast.Estr (s, _) ->
          let sl = string_label g s in
          items := Asm.Dwordsym (sl, 0) :: !items
      | _ -> (
          match const_eval g.arch e with
          | Some (Cint n) -> (
              match size with
              | 1 -> items := Asm.Dbytes (String.make 1 (Char.chr (Int32.to_int n land 0xff))) :: !items
              | 2 ->
                  let b = Bytes.create 2 in
                  Ldb_util.Endian.set_u16 (Arch.endian g.arch) b 0 (Int32.to_int n land 0xffff);
                  items := Asm.Dbytes (Bytes.to_string b) :: !items
              | _ -> items := Asm.Dword n :: !items)
          | Some (Cflt x) ->
              let b = Bytes.create size in
              (match size with
              | 4 -> Ldb_util.Endian.set_u32 (Arch.endian g.arch) b 0 (Int32.bits_of_float x)
              | 8 -> Ldb_util.Endian.set_u64 (Arch.endian g.arch) b 0 (Int64.bits_of_float x)
              | 10 -> Bytes.blit_string (Float80.to_bytes x) 0 b 0 10
              | _ -> ());
              items := Asm.Dbytes (Bytes.to_string b) :: !items
          | None -> items := Asm.Dspace size :: !items)));
  g.data <- !items @ g.data;
  if export then ()

(** Process the declarations at the head of a block, producing scope
    entries, debug symbols, and initializer code. *)
let rec do_decls f (decls : Ast.decl list) =
  let frame = ref [] in
  List.iter
    (fun (d : Ast.decl) ->
      let ty = d.Ast.dty in
      let name = d.Ast.dname in
      match d.Ast.dstorage with
      | Ast.Static ->
          let label = static_label f.g name in
          emit_data f.g label ty d.Ast.dinit false;
          let idx = Sym.add_anchor_slot f.g.ud label in
          let sym = new_sym f name ty Sym.Kvar d.Ast.dpos (Sym.Anchored idx) in
          frame := { se_name = name; se_binding = { b_ty = ty; b_addr = Clabel label };
                     se_sym = Some sym } :: !frame
      | Ast.Extern ->
          let label = mangle name in
          let sym = new_sym f name ty Sym.Kvar d.Ast.dpos (Sym.Global label) in
          frame := { se_name = name; se_binding = { b_ty = ty; b_addr = Clabel label };
                     se_sym = Some sym } :: !frame
      | Ast.Register when Ctype.is_integer ty || Ctype.is_pointer ty ->
          (match f.regpool with
          | r :: rest ->
              f.regpool <- rest;
              let save = alloc_slot f 4 4 in
              f.saved_regs <- (r, save) :: f.saved_regs;
              let sym = new_sym f name ty Sym.Kvar d.Ast.dpos (Sym.In_reg r) in
              frame := { se_name = name; se_binding = { b_ty = ty; b_addr = Creg r };
                         se_sym = Some sym } :: !frame;
              (match d.Ast.dinit with
              | Some e ->
                  let ctx = ectx_of_fenv f in
                  let v, vt = rvalue ctx e in
                  let v = convert ctx v vt ty d.Ast.dpos in
                  emit f (Ir.Sexp (Ir.Regasgn (r, v)))
              | None -> ())
          | [] -> do_auto f frame d)
      | _ -> do_auto f frame d)
    decls;
  f.scopes <- !frame :: f.scopes

and do_auto f frame (d : Ast.decl) =
  let ty = d.Ast.dty in
  let size = Ctype.size f.g.arch ty and align = Ctype.align f.g.arch ty in
  let off = alloc_slot f size (max align 4) in
  let sym = new_sym f d.Ast.dname ty Sym.Kvar d.Ast.dpos (Sym.Frame off) in
  frame := { se_name = d.Ast.dname; se_binding = { b_ty = ty; b_addr = Cframe off };
             se_sym = Some sym } :: !frame;
  match d.Ast.dinit with
  | Some e ->
      (* temporarily make the symbol visible for its own initializer *)
      f.scopes <- [ List.hd !frame ] :: f.scopes;
      let ctx = ectx_of_fenv f in
      let v, vt = rvalue ctx e in
      let v = convert ctx v vt ty d.Ast.dpos in
      emit f (Ir.Sexp (Ir.Asgn (irty ctx ty, Ir.Addrl off, v)));
      f.scopes <- List.tl f.scopes
  | None -> ()

and do_stmt f (s : Ast.stmt) =
  let ctx () = ectx_of_fenv f in
  match s with
  | Ast.Sempty _ -> ()
  | Ast.Sexpr (e, pos) ->
      stop_point f pos;
      let v, _ = rvalue (ctx ()) e in
      emit f (Ir.Sexp v)
  | Ast.Sif (c, then_, else_, pos) ->
      stop_point f pos;
      let lt = fresh_label f.g and lf = fresh_label f.g and ld = fresh_label f.g in
      cond_jump (ctx ()) c ~iftrue:lt ~iffalse:lf;
      emit f (Ir.Slabel lt);
      do_stmt f then_;
      emit f (Ir.Sjump ld);
      emit f (Ir.Slabel lf);
      (match else_ with Some s -> do_stmt f s | None -> ());
      emit f (Ir.Slabel ld)
  | Ast.Swhile (c, body, pos) ->
      let ltest = fresh_label f.g and lbody = fresh_label f.g and ldone = fresh_label f.g in
      emit f (Ir.Slabel ltest);
      stop_point f pos;
      cond_jump (ctx ()) c ~iftrue:lbody ~iffalse:ldone;
      emit f (Ir.Slabel lbody);
      f.breaks <- ldone :: f.breaks;
      f.continues <- ltest :: f.continues;
      do_stmt f body;
      f.breaks <- List.tl f.breaks;
      f.continues <- List.tl f.continues;
      emit f (Ir.Sjump ltest);
      emit f (Ir.Slabel ldone)
  | Ast.Sdo (body, c, pos) ->
      let ltop = fresh_label f.g and ltest = fresh_label f.g and ldone = fresh_label f.g in
      emit f (Ir.Slabel ltop);
      f.breaks <- ldone :: f.breaks;
      f.continues <- ltest :: f.continues;
      do_stmt f body;
      f.breaks <- List.tl f.breaks;
      f.continues <- List.tl f.continues;
      emit f (Ir.Slabel ltest);
      stop_point f pos;
      cond_jump (ctx ()) c ~iftrue:ltop ~iffalse:ldone;
      emit f (Ir.Slabel ldone)
  | Ast.Sfor (init, cond, incr, body, pos) ->
      (* separate stopping points for init, test and increment (Fig. 1) *)
      (match init with
      | Some e ->
          stop_point f (Ast.expr_pos e);
          let v, _ = rvalue (ctx ()) e in
          emit f (Ir.Sexp v)
      | None -> ());
      let ltest = fresh_label f.g and lbody = fresh_label f.g in
      let lincr = fresh_label f.g and ldone = fresh_label f.g in
      emit f (Ir.Slabel ltest);
      (match cond with
      | Some e ->
          stop_point f (Ast.expr_pos e);
          cond_jump (ctx ()) e ~iftrue:lbody ~iffalse:ldone
      | None -> emit f (Ir.Sjump lbody));
      emit f (Ir.Slabel lbody);
      f.breaks <- ldone :: f.breaks;
      f.continues <- lincr :: f.continues;
      do_stmt f body;
      f.breaks <- List.tl f.breaks;
      f.continues <- List.tl f.continues;
      emit f (Ir.Slabel lincr);
      (match incr with
      | Some e ->
          stop_point f (Ast.expr_pos e);
          let v, _ = rvalue (ctx ()) e in
          emit f (Ir.Sexp v)
      | None -> ());
      emit f (Ir.Sjump ltest);
      emit f (Ir.Slabel ldone);
      ignore pos
  | Ast.Sreturn (e, pos) ->
      stop_point f pos;
      (match e with
      | None -> emit f (Ir.Sret None)
      | Some e ->
          let v, vt = rvalue (ctx ()) e in
          let v = convert (ctx ()) v vt f.ret_ty pos in
          emit f (Ir.Sret (Some v)))
  | Ast.Sbreak pos -> (
      stop_point f pos;
      match f.breaks with
      | l :: _ -> emit f (Ir.Sjump l)
      | [] -> fail pos "break outside a loop")
  | Ast.Scontinue pos -> (
      stop_point f pos;
      match f.continues with
      | l :: _ -> emit f (Ir.Sjump l)
      | [] -> fail pos "continue outside a loop")
  | Ast.Sblock (b, _) ->
      let saved_tail = f.uplink_tail in
      do_decls f b.Ast.bdecls;
      List.iter (do_stmt f) b.Ast.bstmts;
      f.scopes <- List.tl f.scopes;
      f.uplink_tail <- saved_tail
  | Ast.Sswitch (scrutinee, cases, pos) ->
      (* dispatch: one compare-and-branch per case, then fallthrough
         bodies with C semantics; break exits the switch *)
      stop_point f pos;
      let v, vt = rvalue (ctx ()) scrutinee in
      if not (Ctype.is_integer vt) then fail pos "switch on a non-integer";
      let slot = alloc_slot f 4 4 in
      emit f (Ir.Sexp (Ir.Asgn (Ir.I4, Ir.Addrl slot, v)));
      let ldone = fresh_label f.g in
      let labelled = List.map (fun c -> (c, fresh_label f.g)) cases in
      List.iter
        (fun ((c : Ast.switch_case), l) ->
          match c.Ast.sc_val with
          | Some k ->
              emit f
                (Ir.Scjump (Ir.I4, Ir.Req, Ir.Indir (Ir.I4, Ir.Addrl slot),
                            Ir.Cnst (Ir.I4, k), l))
          | None -> ())
        labelled;
      (match List.find_opt (fun ((c : Ast.switch_case), _) -> c.Ast.sc_val = None) labelled with
      | Some (_, l) -> emit f (Ir.Sjump l)
      | None -> emit f (Ir.Sjump ldone));
      f.breaks <- ldone :: f.breaks;
      List.iter
        (fun ((c : Ast.switch_case), l) ->
          emit f (Ir.Slabel l);
          List.iter (do_stmt f) c.Ast.sc_body)
        labelled;
      f.breaks <- List.tl f.breaks;
      emit f (Ir.Slabel ldone)

(** Translate one function definition. *)
let do_func (g : genv) (fn : Ast.func) : func_ir =
  let target = g.target in
  let local_base =
    match g.arch with Arch.Mips | Arch.Sparc -> -4 (* ra slot *) | _ -> 0
  in
  let f =
    {
      g;
      fname = fn.Ast.fname;
      ret_ty = fn.Ast.fret;
      frame_low = local_base;
      local_base;
      code = [];
      stops = [];
      nstop = 0;
      scopes = [];
      uplink_tail = None;
      breaks = [];
      continues = [];
      regpool = target.Target.reg_vars;
      saved_regs = [];
      param_homes = [];
    }
  in
  (* parameters: memory homes in the caller's argument area *)
  let nunit = ref 0 in
  let param_frame = ref [] in
  let param_syms = ref [] in
  List.iter
    (fun (pname, pty, ppos) ->
      let units = if Ctype.is_float pty && not (Ctype.equal pty Ctype.Float) then 2
                  else if Ctype.equal pty Ctype.Float then 2 (* promoted to double *)
                  else 1 in
      let home = arg_home_offset target !nunit in
      let sym = new_sym f pname pty Sym.Kparam ppos (Sym.Frame home) in
      param_syms := sym :: !param_syms;
      param_frame :=
        { se_name = pname; se_binding = { b_ty = pty; b_addr = Cframe home };
          se_sym = Some sym } :: !param_frame;
      nunit := !nunit + units)
    fn.Ast.fparams;
  f.scopes <- [ !param_frame ];
  (* prologue stores for argument units that arrive in registers *)
  let reg_param_stores =
    List.filteri (fun u _ -> u < !nunit) (List.mapi (fun u r -> (r, arg_home_offset target u)) target.Target.arg_regs)
  in
  (* entry stopping point (point 0 in Fig. 1) *)
  stop_point f fn.Ast.fpos;
  (* body *)
  let saved_tail = f.uplink_tail in
  do_decls f fn.Ast.fbody.Ast.bdecls;
  List.iter (do_stmt f) fn.Ast.fbody.Ast.bstmts;
  f.scopes <- List.tl f.scopes;
  ignore saved_tail;
  (* exit stopping point at the closing brace *)
  stop_point f fn.Ast.fendpos;
  emit f (Ir.Sret None);
  let locals_bytes = -f.frame_low in
  let frame_size = (4 + locals_bytes + 7) / 8 * 8 in
  let label = if fn.Ast.fstorage = Ast.Static then static_label g fn.Ast.fname
              else mangle fn.Ast.fname in
  (* function debug entry *)
  let fi_debug =
    if g.debug then begin
      let fsym =
        { Sym.sid = fresh_sid g; sym_name = fn.Ast.fname; sym_ty =
            Ctype.Func (fn.Ast.fret, List.map (fun (_, t, _) -> t) fn.Ast.fparams);
          kind = Sym.Kfunc; spos = fn.Ast.fpos; sfile = g.unit_name;
          where = Some (Sym.Global label); uplink = None; validity = [] }
      in
      let stops = List.rev f.stops in
      (* every symbol reachable through some stopping point's scope chain,
         once each, in chain order — the universe both emitters serialize *)
      let fd_locals =
        let seen = Hashtbl.create 16 in
        let acc = ref [] in
        List.iter
          (fun (sp : Sym.stop_point) ->
            let rec chain = function
              | None -> ()
              | Some (s : Sym.t) ->
                  if not (Hashtbl.mem seen s.Sym.sid) then begin
                    Hashtbl.replace seen s.Sym.sid ();
                    acc := s :: !acc;
                    chain s.Sym.uplink
                  end
            in
            chain sp.Sym.sp_scope)
          stops;
        List.rev !acc
      in
      let fd =
        { Sym.fd_sym = fsym; fd_label = label; fd_params = List.rev !param_syms;
          fd_locals; fd_stops = stops; fd_frame_size = frame_size;
          fd_ra_offset = frame_size - 4; fd_saved_regs = f.saved_regs }
      in
      g.ud.Sym.ud_funcs <- fd :: g.ud.Sym.ud_funcs;
      Some fd
    end
    else None
  in
  {
    fi_label = label;
    fi_name = fn.Ast.fname;
    fi_body = List.rev f.code;
    fi_locals_bytes = locals_bytes;
    fi_frame_size = frame_size;
    fi_reg_param_stores = reg_param_stores;
    fi_saved_regs = f.saved_regs;
    fi_ret_float = Ctype.is_float fn.Ast.fret;
    fi_debug;
  }

(** Translate a whole unit. *)
let translate ~(arch : Arch.t) ~(debug : bool) (u : Ast.unit_) : unit_ir =
  let target = Target.of_arch arch in
  let ud =
    { Sym.ud_name = u.Ast.uname; ud_arch = arch; ud_anchor = Sym.anchor_name u.Ast.uname;
      ud_anchor_slots = []; ud_funcs = []; ud_statics = []; ud_globals = [] }
  in
  let g =
    { arch; target; unit_name = u.Ast.uname; debug; sid = 0; nlabel = 0; nstatic = 0;
      funcs = Hashtbl.create 16; globals = Hashtbl.create 16; data = [];
      strings = Hashtbl.create 16; ud }
  in
  (* the simulated kernel's printf is always available *)
  Hashtbl.replace g.funcs "printf" (Ctype.Func (Ctype.Int, []));
  (* first pass: register functions and globals *)
  List.iter
    (fun top ->
      match top with
      | Ast.Tfunc fn ->
          Hashtbl.replace g.funcs fn.Ast.fname
            (Ctype.Func (fn.Ast.fret, List.map (fun (_, t, _) -> t) fn.Ast.fparams))
      | Ast.Tfuncdecl (name, ty, _) -> (
          match ty with
          | Ctype.Func _ -> Hashtbl.replace g.funcs name ty
          | _ -> ())
      | Ast.Tvar _ -> ())
    u.Ast.tops;
  let globals = ref [] in
  let funcs = ref [] in
  List.iter
    (fun top ->
      match top with
      | Ast.Tvar d when d.Ast.dname = "%struct" -> ()
      | Ast.Tvar d -> (
          let name = d.Ast.dname in
          let ty = d.Ast.dty in
          match d.Ast.dstorage with
          | Ast.Extern ->
              (* declaration only: no data emitted *)
              let label = mangle name in
              Hashtbl.replace g.globals name
                ({ b_ty = ty; b_addr = Clabel label }, None)
          | Ast.Static ->
              let label = static_label g name in
              emit_data g label ty d.Ast.dinit false;
              let idx = Sym.add_anchor_slot ud label in
              let sym =
                { Sym.sid = fresh_sid g; sym_name = name; sym_ty = ty; kind = Sym.Kvar;
                  spos = d.Ast.dpos; sfile = g.unit_name;
                  where = Some (Sym.Anchored idx); uplink = None; validity = [] }
              in
              ud.Sym.ud_statics <- sym :: ud.Sym.ud_statics;
              Hashtbl.replace g.globals name ({ b_ty = ty; b_addr = Clabel label }, Some sym)
          | _ ->
              let label = mangle name in
              emit_data g label ty d.Ast.dinit true;
              globals := label :: !globals;
              let sym =
                { Sym.sid = fresh_sid g; sym_name = name; sym_ty = ty; kind = Sym.Kvar;
                  spos = d.Ast.dpos; sfile = g.unit_name;
                  where = Some (Sym.Global label); uplink = None; validity = [] }
              in
              if debug then ud.Sym.ud_globals <- sym :: ud.Sym.ud_globals;
              Hashtbl.replace g.globals name ({ b_ty = ty; b_addr = Clabel label }, Some sym))
      | Ast.Tfuncdecl _ -> ()
      | Ast.Tfunc fn ->
          let fi = do_func g fn in
          if fn.Ast.fstorage <> Ast.Static then globals := fi.fi_label :: !globals;
          funcs := fi :: !funcs)
    u.Ast.tops;
  ud.Sym.ud_funcs <- List.rev ud.Sym.ud_funcs;
  ud.Sym.ud_statics <- List.rev ud.Sym.ud_statics;
  ud.Sym.ud_globals <- List.rev ud.Sym.ud_globals;
  {
    ui_name = u.Ast.uname;
    ui_arch = arch;
    ui_funcs = List.rev !funcs;
    ui_data = List.rev g.data;
    ui_globals = List.rev !globals;
    ui_debug = (if debug then Some ud else None);
  }
