(** Integration tests for the debugger proper: connection mechanisms,
    breakpoints, value printing through the PostScript machinery, stack
    walking on every architecture, register variables with alias reuse,
    assignment, fault catching, reconnection, and cross-architecture /
    multi-target debugging from a single ldb instance. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Frame = Ldb_ldb.Frame
module Host = Ldb_ldb.Host
module Breakpoint = Ldb_ldb.Breakpoint

let check = Alcotest.check

let deep_c =
  {|
int depth3(int x) { int local3; local3 = x * 3; return local3; }
int depth2(int x) { int local2; local2 = depth3(x + 1) + 1; return local2; }
int depth1(int x) { register int r1; r1 = x + 100; return depth2(r1); }
int main(void) {
    printf("%d\n", depth1(5));
    return 0;
}
|}

let values_c =
  {|
struct point { int x; int y; double w; };
static struct point origin;
double gd = 2.5;
char *msg = "hi there";

int work(void)
{
    struct point p;
    int v[4];
    double d;
    char c;
    int i;
    p.x = 10; p.y = 20; p.w = 1.5;
    origin.x = -1;
    for (i = 0; i < 4; i++) v[i] = i + 1;
    d = gd * 2.0;
    c = 'Q';
    printf("done %d %g %c\n", v[3], d, c);
    return p.x + p.y;
}
int main(void) { return work(); }
|}

(* line numbers in values_c (leading newline = line 1 empty):
   printf at line 19 -- by then all locals are set *)

let session ~arch src = Testkit.debug_session ~arch [ ("t.c", src) ]

(* --- breakpoints --------------------------------------------------------------- *)

let test_break_function_all_archs () =
  List.iter
    (fun arch ->
      let s = session ~arch Testkit.fib_c in
      let addr = Ldb.break_function s.Testkit.d s.Testkit.tg "fib" in
      Alcotest.(check bool) "address in code" true (addr >= Ram.Layout.code_base);
      match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
      | Ldb.Stopped { signal = SIGTRAP; _ } ->
          let fr = Ldb.top_frame s.Testkit.d s.Testkit.tg in
          check Alcotest.string (Arch.name arch ^ " stopped in fib") "fib"
            (Ldb.frame_function s.Testkit.d s.Testkit.tg fr)
      | _ -> Alcotest.fail "did not stop at breakpoint")
    Arch.all

let test_break_only_at_noops () =
  let s = session ~arch:Mips Testkit.fib_c in
  (* address of fib's entry + 4 is not a stopping point no-op *)
  let addr = Ldb.break_function s.Testkit.d s.Testkit.tg "fib" in
  Ldb.clear_breakpoint s.Testkit.tg ~addr;
  (* scan past any consecutive stopping-point no-ops to real code *)
  let tdesc = s.Testkit.tg.Ldb.tg_tdesc in
  let wire = s.Testkit.tg.Ldb.tg_wire in
  let nop = tdesc.Target.nop in
  let rec first_real a =
    if Breakpoint.fetch_bytes wire a (String.length nop) = nop then
      first_real (a + String.length nop)
    else a
  in
  match
    Breakpoint.plant s.Testkit.tg.Ldb.tg_breaks tdesc wire ~addr:(first_real addr)
  with
  | exception Breakpoint.Error _ -> ()
  | _bp -> Alcotest.fail "planted a breakpoint on a non-no-op"

let test_breakpoint_removal () =
  let s = session ~arch:Vax Testkit.fib_c in
  let addrs = Ldb.break_line s.Testkit.d s.Testkit.tg ~line:8 in
  ignore (Ldb.continue_ s.Testkit.d s.Testkit.tg);
  List.iter (fun addr -> Ldb.clear_breakpoint s.Testkit.tg ~addr) addrs;
  match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
  | Ldb.Exited 0 ->
      check Alcotest.string "output intact" "1 1 2 3 5 8 13 21 34 55 \n"
        (Host.output s.Testkit.proc)
  | _ -> Alcotest.fail "did not run to completion after removal"

let test_breakpoints_survive_and_dont_corrupt () =
  (* planting and removing restores the exact no-op bytes *)
  let s = session ~arch:M68k Testkit.fib_c in
  let tg = s.Testkit.tg in
  let addr = Ldb.break_function s.Testkit.d tg "fib" in
  Ldb.clear_breakpoint tg ~addr;
  let bytes = Breakpoint.fetch_bytes tg.Ldb.tg_wire addr 2 in
  check Alcotest.string "no-op restored" tg.Ldb.tg_tdesc.Target.nop bytes

(* --- value printing -------------------------------------------------------------- *)

let stop_in_work s =
  ignore (Ldb.break_line s.Testkit.d s.Testkit.tg ~line:19);
  match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
  | Ldb.Stopped _ -> Ldb.top_frame s.Testkit.d s.Testkit.tg
  | _ -> Alcotest.fail "did not stop"

let test_print_values_all_archs () =
  List.iter
    (fun arch ->
      let s = session ~arch values_c in
      let fr = stop_in_work s in
      let p name = Ldb.print_value s.Testkit.d s.Testkit.tg fr name in
      let an = Arch.name arch in
      check Alcotest.string (an ^ " int array") "{1, 2, 3, 4}" (p "v");
      check Alcotest.string (an ^ " struct") "{x=10, y=20, w=1.5}" (p "p");
      check Alcotest.string (an ^ " double") "5.0" (p "d");
      check Alcotest.string (an ^ " char") "'Q'" (p "c");
      check Alcotest.string (an ^ " global double") "2.5" (p "gd");
      check Alcotest.string (an ^ " char pointer") "\"hi there\"" (p "msg");
      check Alcotest.string (an ^ " static struct") "{x=-1, y=0, w=0.0}" (p "origin"))
    Arch.all

let test_scope_rules () =
  (* i is visible inside its block; j is not *)
  let s = session ~arch:Sparc Testkit.fib_c in
  ignore (Ldb.break_line s.Testkit.d s.Testkit.tg ~line:8);
  ignore (Testkit.continue_n s 1);
  let fr = Ldb.top_frame s.Testkit.d s.Testkit.tg in
  (match Ldb.resolve s.Testkit.d s.Testkit.tg fr "i" with
  | Some _ -> ()
  | None -> Alcotest.fail "i not visible at its own loop");
  (match Ldb.resolve s.Testkit.d s.Testkit.tg fr "j" with
  | None -> ()
  | Some _ -> Alcotest.fail "j leaked into the first block");
  (* statics and params visible *)
  (match Ldb.resolve s.Testkit.d s.Testkit.tg fr "a" with
  | Some _ -> ()
  | None -> Alcotest.fail "static a not visible");
  match Ldb.resolve s.Testkit.d s.Testkit.tg fr "n" with
  | Some _ -> ()
  | None -> Alcotest.fail "parameter n not visible"

(* --- stack walking ------------------------------------------------------------------ *)

let test_backtrace_all_archs () =
  List.iter
    (fun arch ->
      let s = session ~arch deep_c in
      ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "depth3");
      ignore (Ldb.continue_ s.Testkit.d s.Testkit.tg);
      let bt = Ldb.backtrace s.Testkit.d s.Testkit.tg in
      let names = List.map (Ldb.frame_function s.Testkit.d s.Testkit.tg) bt in
      check
        Alcotest.(list string)
        (Arch.name arch ^ " backtrace")
        [ "depth3"; "depth2"; "depth1"; "main" ]
        names)
    Arch.all

let test_locals_in_walked_frames () =
  List.iter
    (fun arch ->
      let s = session ~arch deep_c in
      ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "depth3");
      ignore (Ldb.continue_ s.Testkit.d s.Testkit.tg);
      let bt = Ldb.backtrace s.Testkit.d s.Testkit.tg in
      let fr3 = List.nth bt 0 and fr1 = List.nth bt 2 in
      (* depth3's parameter x = r1 = 105 after depth2 added 1 -> 106 *)
      check Alcotest.int
        (Arch.name arch ^ " x in depth3")
        106
        (Ldb.read_int_var s.Testkit.d s.Testkit.tg fr3 "x");
      (* the register variable r1 in depth1's frame, read through the
         alias chain (saved register or reused context alias) *)
      check Alcotest.int
        (Arch.name arch ^ " register var in walked frame")
        105
        (Ldb.read_int_var s.Testkit.d s.Testkit.tg fr1 "r1"))
    Arch.all

(* --- assignment ------------------------------------------------------------------------ *)

let test_assignment_changes_execution () =
  List.iter
    (fun arch ->
      let s = session ~arch Testkit.fib_c in
      ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "fib");
      ignore (Ldb.continue_ s.Testkit.d s.Testkit.tg);
      let fr = Ldb.top_frame s.Testkit.d s.Testkit.tg in
      Testkit.ok_unit (Ldb.assign_int s.Testkit.d s.Testkit.tg fr "n" 4);
      (match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
      | Ldb.Exited 0 -> ()
      | _ -> Alcotest.fail "did not finish");
      check Alcotest.string
        (Arch.name arch ^ " n=4 output")
        "1 1 2 3 \n"
        (Host.output s.Testkit.proc))
    Arch.all

let test_float_assignment () =
  let s = session ~arch:M68k values_c in
  let fr = stop_in_work s in
  Testkit.ok_unit (Ldb.assign_float s.Testkit.d s.Testkit.tg fr "d" 9.25);
  check Alcotest.string "d after assign" "9.25"
    (Ldb.print_value s.Testkit.d s.Testkit.tg fr "d")

(* --- faults and post-mortem -------------------------------------------------------------- *)

let faulty_c =
  {|
int crash(int d) { return 100 / d; }
int main(void) {
    printf("before\n");
    printf("%d\n", crash(0));
    return 0;
}
|}

let test_fault_caught () =
  List.iter
    (fun arch ->
      let s = session ~arch faulty_c in
      match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
      | Ldb.Stopped { signal = SIGFPE; _ } ->
          let fr = Ldb.top_frame s.Testkit.d s.Testkit.tg in
          check Alcotest.string
            (Arch.name arch ^ " faulted in crash")
            "crash"
            (Ldb.frame_function s.Testkit.d s.Testkit.tg fr);
          (* the argument that caused it is inspectable *)
          check Alcotest.int (Arch.name arch ^ " d") 0
            (Ldb.read_int_var s.Testkit.d s.Testkit.tg fr "d")
      | _ -> Alcotest.fail "expected SIGFPE stop")
    Arch.all

let test_postmortem_attach () =
  (* the program faults with NO debugger attached; the nub preserves
     state; ldb attaches afterwards *)
  let p = Host.launch ~arch:Vax [ ("f.c", faulty_c) ] ~paused:false in
  (match p.Host.hp_proc.Proc.status with
  | Proc.Stopped (SIGFPE, _) -> ()
  | _ -> Alcotest.fail "program did not fault");
  let d = Ldb.create () in
  let tg = Host.attach_existing d ~name:"postmortem" p in
  (match tg.Ldb.tg_state with
  | Ldb.Stopped { signal = SIGFPE; _ } -> ()
  | _ -> Alcotest.fail "attach did not see the fault");
  let fr = Ldb.top_frame d tg in
  check Alcotest.string "faulting function" "crash" (Ldb.frame_function d tg fr)

let test_detach_reattach () =
  let s = session ~arch:Mips Testkit.fib_c in
  ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "fib");
  ignore (Ldb.continue_ s.Testkit.d s.Testkit.tg);
  (* first debugger detaches (or crashes) *)
  Ldb.detach s.Testkit.tg;
  (* a second debugger picks up exactly where the first left off *)
  let d2 = Ldb.create () in
  let tg2 = Host.attach_existing d2 ~name:"second" s.Testkit.proc in
  let fr = Ldb.top_frame d2 tg2 in
  check Alcotest.string "still stopped in fib" "fib" (Ldb.frame_function d2 tg2 fr);
  check Alcotest.int "n readable" 10 (Ldb.read_int_var d2 tg2 fr "n")

(* --- multi-target, cross-architecture ------------------------------------------------------ *)

let test_two_targets_simultaneously () =
  (* one ldb debugging a big-endian SIM-MIPS and a little-endian SIM-VAX
     at once, with the same machine-independent code *)
  let d = Ldb.create () in
  let p1, tg1 = Host.spawn d ~arch:Mips ~name:"mips-side" [ ("t.c", Testkit.fib_c) ] in
  let p2, tg2 = Host.spawn d ~arch:Vax ~name:"vax-side" [ ("t.c", Testkit.fib_c) ] in
  ignore (Ldb.break_function d tg1 "fib");
  ignore (Ldb.break_function d tg2 "fib");
  ignore (Ldb.continue_ d tg1);
  ignore (Ldb.continue_ d tg2);
  let f1 = Ldb.top_frame d tg1 and f2 = Ldb.top_frame d tg2 in
  check Alcotest.int "mips n" 10 (Ldb.read_int_var d tg1 f1 "n");
  check Alcotest.int "vax n" 10 (Ldb.read_int_var d tg2 f2 "n");
  (* run both to completion *)
  ignore (Ldb.continue_ d tg1);
  ignore (Ldb.continue_ d tg2);
  check Alcotest.string "mips out" "1 1 2 3 5 8 13 21 34 55 \n" (Host.output p1);
  check Alcotest.string "vax out" "1 1 2 3 5 8 13 21 34 55 \n" (Host.output p2)

let test_arch_mismatch_check () =
  (* connecting with a symbol table for the wrong architecture must fail *)
  let d = Ldb.create () in
  let p1 = Host.launch ~arch:Mips [ ("a.c", Testkit.fib_c) ] in
  let p2 = Host.launch ~arch:Vax [ ("a.c", Testkit.fib_c) ] in
  match Ldb.connect d ~name:"bad" ~loader_ps:p2.Host.hp_loader_ps (Host.open_channel p1) with
  | exception Ldb.Error _ -> ()
  | exception Ldb_ldb.Linkerif.Error _ -> ()
  | _tg -> Alcotest.fail "mismatched symbol table accepted"

let test_where_report () =
  let s = session ~arch:Sparc Testkit.fib_c in
  ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "fib");
  ignore (Ldb.continue_ s.Testkit.d s.Testkit.tg);
  let w = Ldb.where s.Testkit.d s.Testkit.tg in
  Alcotest.(check bool) "mentions SIGTRAP and fib" true
    (let has sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length w && (String.sub w i n = sub || go (i + 1)) in
       go 0
     in
     has "SIGTRAP" && has "fib")

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "ldb"
    [
      ( "breakpoints",
        [ case "break at function (all targets)" test_break_function_all_archs;
          case "no-ops only" test_break_only_at_noops;
          case "removal" test_breakpoint_removal;
          case "bytes restored" test_breakpoints_survive_and_dont_corrupt ] );
      ( "printing",
        [ case "values on all targets" test_print_values_all_archs;
          case "scope rules" test_scope_rules ] );
      ( "stack",
        [ case "backtrace on all targets" test_backtrace_all_archs;
          case "locals and register vars in walked frames" test_locals_in_walked_frames ] );
      ( "assignment",
        [ case "changes execution" test_assignment_changes_execution;
          case "floats" test_float_assignment ] );
      ( "faults",
        [ case "caught and inspectable" test_fault_caught;
          case "post-mortem attach" test_postmortem_attach;
          case "detach and reattach" test_detach_reattach ] );
      ( "multi-target",
        [ case "two architectures at once" test_two_targets_simultaneously;
          case "architecture mismatch" test_arch_mismatch_check;
          case "where" test_where_report ] );
    ]
