(** Soak tests for the fault-tolerant transport: complete debug sessions
    (plant a breakpoint, continue, inspect a variable, run to exit) on all
    four SIM targets while the ldb↔nub link injects drops, bit-flips,
    truncations, duplicates, stalls and mid-message disconnects from a
    seeded PRNG.

    The contract under test: a session either completes with {e exactly}
    the answers a clean run produces, or fails with a typed
    {!Ldb_ldb.Transport.Error} — never an uncaught exception, and never a
    silently wrong answer.  Disconnects are recovered by
    reattach-and-resync: reconnect to the surviving nub, replay Hello,
    re-read the stop context, re-validate planted breakpoints. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Transport = Ldb_ldb.Transport
module Chan = Ldb_nub.Chan
module Faultchan = Ldb_nub.Faultchan

let check = Alcotest.check
let sources = [ ("fib.c", Testkit.fib_c) ]

(** What a breakpoint/inspect/run-to-exit session observes. *)
type outcome = {
  oc_func : string;   (** function the breakpoint stopped in *)
  oc_n : int;         (** value of the argument [n] at the stop *)
  oc_status : int;    (** exit status *)
  oc_output : string; (** everything the target printed *)
}

let outcome_testable : outcome Alcotest.testable =
  Alcotest.testable
    (fun ppf o ->
      Fmt.pf ppf "{func=%s; n=%d; status=%d; output=%S}" o.oc_func o.oc_n o.oc_status
        o.oc_output)
    ( = )

let max_reattaches = 10

(** Run the canonical session over target [p]/[tg].  Transport
    disconnects are recovered by reattaching to the surviving nub over a
    fresh (clean) channel; any other [Transport.Error] propagates to the
    caller, which decides whether that counts as failure. *)
let run_scenario (d : Ldb.t) (p : Host.process) (tg : Ldb.target) : outcome =
  let reattaches = ref 0 in
  let reattach () =
    incr reattaches;
    if !reattaches > max_reattaches then
      Alcotest.failf "gave up after %d reattaches" max_reattaches;
    ignore (Host.reattach d tg p : Ldb.state)
  in
  (* retry an idempotent operation across disconnects *)
  let rec guard : 'a. (unit -> 'a) -> 'a =
   fun f ->
    try f ()
    with Transport.Error (Transport.Disconnected, _) ->
      reattach ();
      guard f
  in
  (* resuming is NOT idempotent: the nub may have executed the Continue
     and stopped before the link died.  After reattach, Hello reports the
     nub's preserved state — if the stop context moved, that stop is the
     answer; if it is unchanged, the resume never happened and is
     re-issued. *)
  let pc_of st = match st with Ldb.Stopped { ctx_addr; _ } -> Ldb.read_ctx_pc tg ctx_addr | _ -> -1 in
  let rec resume () =
    let before = pc_of tg.Ldb.tg_state in
    try Testkit.ok (Ldb.continue_ d tg)
    with Transport.Error (Transport.Disconnected, _) -> (
      reattach ();
      match tg.Ldb.tg_state with
      | Ldb.Exited _ -> tg.Ldb.tg_state
      | Ldb.Stopped _ when pc_of tg.Ldb.tg_state <> before -> tg.Ldb.tg_state
      | _ -> resume ())
  in
  ignore (guard (fun () -> Ldb.break_function d tg "fib") : int);
  (match resume () with
  | Ldb.Stopped _ -> ()
  | st -> Alcotest.failf "expected to stop at the breakpoint, got %s"
            (match st with Ldb.Exited n -> Printf.sprintf "Exited %d" n | _ -> "Running"));
  let oc_func =
    guard (fun () -> Ldb.frame_function d tg (Ldb.top_frame d tg))
  in
  let oc_n = guard (fun () -> Ldb.read_int_var d tg (Ldb.top_frame d tg) "n") in
  let oc_status =
    match resume () with
    | Ldb.Exited n -> n
    | _ -> Alcotest.fail "expected the target to run to exit"
  in
  { oc_func; oc_n; oc_status; oc_output = Host.output p }

(** The reference: a session over a clean link. *)
let clean_outcome ~arch : outcome =
  let s = Testkit.debug_session ~arch sources in
  run_scenario s.Testkit.d s.Testkit.proc s.Testkit.tg

(** A session whose link starts injecting faults once connected. *)
let faulty_outcome ~arch ~seed (prof : Faultchan.profile) : outcome * Faultchan.t =
  let d = Ldb.create () in
  let p = Host.launch ~paused:true ~arch sources in
  (* connect over quiet weather, then arm the injector: connection setup
     failures are just Transport errors with nothing to reattach *)
  let chan, fc = Host.open_faulty_channel ~armed:false p ~seed prof in
  let tg = Ldb.connect d ~name:(Arch.name arch) ~loader_ps:p.Host.hp_loader_ps chan in
  Faultchan.set_armed fc true;
  let oc = run_scenario d p tg in
  (oc, fc)

(* --- the matrix ------------------------------------------------------------- *)

(** One fault class at a time, every architecture, fixed seeds.  The
    rates are high enough that faults actually land (asserted below) and
    the budgets low enough that the transport's bounded retries always
    win. *)
let matrix_profile (kind : Faultchan.kind) : Faultchan.profile =
  match kind with
  | Faultchan.Disconnect ->
      (* one cut link per session; recovery is reattach, not retry *)
      Faultchan.profile ~rate:0.15 ~kinds:[ kind ] ~max_faults:1 ()
  | Faultchan.Stall ->
      (* stalls shorter than the transport's first deadline ride on retries *)
      Faultchan.profile ~rate:0.25 ~kinds:[ kind ] ~max_faults:4 ~stall_ticks:4 ()
  | _ -> Faultchan.profile ~rate:0.25 ~kinds:[ kind ] ~max_faults:4 ()

let seed_of arch kind =
  (* stable, distinct per cell *)
  (List.length (List.filter (fun a -> a <> arch) Arch.all) * 100)
  + (match kind with
    | Faultchan.Drop -> 1 | Faultchan.Corrupt -> 2 | Faultchan.Truncate -> 3
    | Faultchan.Duplicate -> 4 | Faultchan.Stall -> 5 | Faultchan.Disconnect -> 6)

let test_fault_kind (kind : Faultchan.kind) () =
  List.iter
    (fun arch ->
      let name = Arch.name arch ^ "/" ^ Faultchan.kind_name kind in
      let clean = clean_outcome ~arch in
      let faulty, fc = faulty_outcome ~arch ~seed:(seed_of arch kind) (matrix_profile kind) in
      check outcome_testable (name ^ " outcome matches clean run") clean faulty;
      if Faultchan.injected fc = 0 then
        Alcotest.failf "%s: the injector never fired (%d messages)" name
          (Faultchan.messages fc))
    Arch.all

(** All fault classes at once — the weather is bad in every way. *)
let test_mixed_storm () =
  List.iter
    (fun arch ->
      let clean = clean_outcome ~arch in
      let prof = Faultchan.profile ~rate:0.15 ~max_faults:6 ~stall_ticks:4 () in
      let faulty, fc = faulty_outcome ~arch ~seed:(1000 + seed_of arch Faultchan.Drop) prof in
      check outcome_testable (Arch.name arch ^ "/storm outcome") clean faulty;
      if Faultchan.injected fc = 0 then
        Alcotest.failf "%s/storm: the injector never fired" (Arch.name arch))
    Arch.all

(* --- explicit disconnect → reattach → resync -------------------------------- *)

(** The full debugger-crash-survival walk, with every step asserted: the
    link dies mid-session, operations fail with the typed [Disconnected]
    error, reattach replays Hello, finds the target exactly where it
    stopped, replants a clobbered breakpoint, and the session finishes
    with the clean run's answers. *)
let test_disconnect_reattach_resync () =
  List.iter
    (fun arch ->
      let an = Arch.name arch in
      let s = Testkit.debug_session ~arch sources in
      let d = s.Testkit.d and p = s.Testkit.proc and tg = s.Testkit.tg in
      let bp_addr = Ldb.break_function d tg "fib" in
      (match Testkit.ok (Ldb.continue_ d tg) with
      | Ldb.Stopped _ -> ()
      | _ -> Alcotest.fail (an ^ ": no stop at breakpoint"));
      let pc_before =
        match tg.Ldb.tg_state with
        | Ldb.Stopped { ctx_addr; _ } -> Ldb.read_ctx_pc tg ctx_addr
        | _ -> assert false
      in
      (* the link dies *)
      Chan.disconnect (Transport.endpoint (Ldb.transport tg));
      (* ... and the failure is typed, not a hang or a random exception *)
      (match Ldb.read_int_var d tg (Ldb.top_frame d tg) "n" with
      | exception Transport.Error (Transport.Disconnected, _) -> ()
      | exception e ->
          Alcotest.failf "%s: expected typed Disconnected, got %s" an (Printexc.to_string e)
      | _ -> Alcotest.fail (an ^ ": read over a dead link succeeded"));
      (* sabotage the planted trap, as if someone had scribbled on memory
         while we were away: resync must notice and replant *)
      let nop = tg.Ldb.tg_tdesc.Target.nop in
      String.iteri
        (fun i c -> Ram.set_u8 p.Host.hp_proc.Proc.ram (bp_addr + i) (Char.code c))
        nop;
      (* reattach over a fresh channel and resync *)
      (match Host.reattach d tg p with
      | Ldb.Stopped { ctx_addr; _ } ->
          check Alcotest.int (an ^ " resync finds the same stop") pc_before
            (Ldb.read_ctx_pc tg ctx_addr)
      | _ -> Alcotest.fail (an ^ ": reattach did not recover the stop"));
      check Alcotest.int (an ^ " one reconnect recorded") 1
        (Transport.stats (Ldb.transport tg)).Transport.st_reconnects;
      (* the clobbered breakpoint was replanted *)
      let brk = tg.Ldb.tg_tdesc.Target.brk in
      let in_ram =
        String.init (String.length brk) (fun i ->
            Char.chr (Ram.get_u8 p.Host.hp_proc.Proc.ram (bp_addr + i)))
      in
      check Alcotest.string (an ^ " trap replanted") brk in_ram;
      (* the session continues as if nothing happened *)
      check Alcotest.string (an ^ " function") "fib"
        (Ldb.frame_function d tg (Ldb.top_frame d tg));
      check Alcotest.int (an ^ " n") 10 (Ldb.read_int_var d tg (Ldb.top_frame d tg) "n");
      (match Testkit.ok (Ldb.continue_ d tg) with
      | Ldb.Exited 0 -> ()
      | _ -> Alcotest.fail (an ^ ": did not run to a clean exit"));
      check Alcotest.string (an ^ " output") "1 1 2 3 5 8 13 21 34 55 \n" (Host.output p))
    Arch.all

(** Detach severs the link on purpose; reattach is the flip side. *)
let test_detach_then_reattach () =
  let arch = Arch.Mips in
  let s = Testkit.debug_session ~arch sources in
  let d = s.Testkit.d and p = s.Testkit.proc and tg = s.Testkit.tg in
  ignore (Ldb.break_function d tg "fib" : int);
  (match Testkit.ok (Ldb.continue_ d tg) with Ldb.Stopped _ -> () | _ -> Alcotest.fail "no stop");
  Ldb.detach tg;
  (match tg.Ldb.tg_state with
  | Ldb.Detached -> ()
  | _ -> Alcotest.fail "detach did not mark the target detached");
  (match Host.reattach d tg p with
  | Ldb.Stopped _ -> ()
  | _ -> Alcotest.fail "reattach after detach failed");
  check Alcotest.string "still stopped in fib" "fib"
    (Ldb.frame_function d tg (Ldb.top_frame d tg));
  match Testkit.ok (Ldb.continue_ d tg) with
  | Ldb.Exited 0 -> ()
  | _ -> Alcotest.fail "no clean exit after reattach"

(* --- teardown under fire ------------------------------------------------------ *)

(** Detaching while the link is injecting faults must leave no trap bytes
    in the target: the release path verifies its restores and re-stores
    any the weather ate.  A trap left in a process nobody is debugging
    turns its next execution into an unhandled fault. *)
let test_teardown_under_fire () =
  List.iter
    (fun arch ->
      List.iter
        (fun seed ->
          let an = Printf.sprintf "%s/seed %d" (Arch.name arch) seed in
          let d = Ldb.create () in
          let p = Host.launch ~paused:true ~arch sources in
          let prof =
            (* every kind but Disconnect: the wire stays up but hostile *)
            Faultchan.profile ~rate:0.25
              ~kinds:Faultchan.[ Drop; Corrupt; Truncate; Duplicate; Stall ]
              ~stall_ticks:4 ()
          in
          let chan, fc = Host.open_faulty_channel ~armed:false p ~seed prof in
          let tg = Ldb.connect d ~name:an ~loader_ps:p.Host.hp_loader_ps chan in
          ignore (Ldb.break_function d tg "fib" : int);
          (match Testkit.ok (Ldb.continue_ d tg) with
          | Ldb.Stopped _ -> ()
          | _ -> Alcotest.fail (an ^ ": no stop at breakpoint"));
          (* the weather turns foul exactly when we leave *)
          Faultchan.set_armed fc true;
          Ldb.detach tg;
          if Faultchan.injected fc = 0 then
            Alcotest.failf "%s: the injector never fired during teardown" an;
          (* inspect target RAM directly — the debugger is gone *)
          Hashtbl.iter
            (fun addr (bp : Ldb_ldb.Breakpoint.t) ->
              let want = bp.Ldb_ldb.Breakpoint.bp_original in
              let in_ram =
                String.init (String.length want) (fun i ->
                    Char.chr (Ram.get_u8 p.Host.hp_proc.Proc.ram (addr + i)))
              in
              check Alcotest.string
                (Printf.sprintf "%s: no trap bytes at %#x after detach" an addr)
                want in_ram)
            tg.Ldb.tg_breaks)
        [ 11; 23; 37 ])
    Arch.all

(* --- the going-down hook fires exactly once ----------------------------------- *)

(** A deliberate kill followed by an RPC that finds the same link dead
    must run the going-down hook once, not twice: the hook records core
    dumps, and one dead target must not yield two. *)
let test_down_hook_fires_once () =
  List.iter
    (fun arch ->
      let an = Arch.name arch in
      let s = Testkit.debug_session ~arch sources in
      let d = s.Testkit.d and tg = s.Testkit.tg in
      let tr = Ldb.transport tg in
      let fires = ref 0 in
      Transport.set_on_down tr (Some (fun _reason -> incr fires));
      ignore (Ldb.break_function d tg "fib" : int);
      (match Testkit.ok (Ldb.continue_ d tg) with
      | Ldb.Stopped _ -> ()
      | _ -> Alcotest.fail (an ^ ": no stop"));
      (* kill: the hook runs while the link still answers *)
      Ldb.kill tg;
      check Alcotest.int (an ^ " hook ran on kill") 1 !fires;
      Alcotest.(check bool) (an ^ " down_fired") true (Transport.down_fired tr);
      (* now the link actually dies and an RPC notices: same connection,
         no second firing *)
      Chan.disconnect (Transport.endpoint tr);
      (match Transport.rpc tr Ldb_nub.Proto.Hello with
      | exception Transport.Error (Transport.Disconnected, _) -> ()
      | exception e ->
          Alcotest.failf "%s: expected Disconnected, got %s" an (Printexc.to_string e)
      | _ -> Alcotest.fail (an ^ ": rpc over a dead link answered"));
      check Alcotest.int (an ^ " hook did not re-fire") 1 !fires;
      check Alcotest.int (an ^ " one firing in the stats") 1
        (Transport.stats tr).Transport.st_down_fires)
    Arch.all

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "faults"
    [
      ( "matrix",
        List.map
          (fun kind ->
            case (Faultchan.kind_name kind ^ " on all targets") (test_fault_kind kind))
          Faultchan.all_kinds );
      ("storm", [ case "all fault classes at once" test_mixed_storm ]);
      ( "reattach",
        [ case "disconnect, reattach, resync" test_disconnect_reattach_resync;
          case "detach then reattach" test_detach_then_reattach ] );
      ( "release",
        [ case "teardown under fire leaves no traps" test_teardown_under_fire;
          case "going-down hook fires exactly once" test_down_hook_fires_once ] );
    ]
