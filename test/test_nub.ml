(** Tests for the nub and its little-endian protocol: pure codec
    round-trips and totality (the decoders never raise), framing with
    CRC-32 integrity and resynchronization, channel failure semantics
    (timeout vs. disconnect), byte-order handling, the SIM-MIPS
    floating-save word-swap quirk, context save/restore, and reconnection
    after a debugger "crash". *)

open Ldb_machine
module Chan = Ldb_nub.Chan
module Proto = Ldb_nub.Proto
module Frame = Ldb_nub.Frame
module Nub = Ldb_nub.Nub

let check = Alcotest.check

(* --- channels -------------------------------------------------------------- *)

let test_chan_basic () =
  let a, b = Chan.pair () in
  Chan.send a "hello";
  check Alcotest.string "recv" "hello" (Chan.recv_exactly b 5);
  Chan.send b "xy";
  check Alcotest.int "u8" (Char.code 'x') (Chan.recv_u8 a);
  check Alcotest.int "u8 2" (Char.code 'y') (Chan.recv_u8 a)

let test_chan_pump () =
  let a, b = Chan.pair () in
  (* b's data arrives only when a pumps *)
  Chan.set_pump a (fun () -> Chan.send b "pumped!");
  check Alcotest.string "pump delivers" "pumped!" (Chan.recv_exactly a 7)

let test_chan_disconnect () =
  let a, b = Chan.pair () in
  Chan.send a "x";
  Chan.disconnect a;
  (* buffered data still readable *)
  check Alcotest.string "buffered" "x" (Chan.recv_exactly b 1);
  match Chan.recv_exactly b 1 with
  | exception Chan.Disconnected -> ()
  | _ -> Alcotest.fail "expected Disconnected"

(** A silent peer on a live link is a {!Chan.Timeout}; a dead link is
    {!Chan.Disconnected}.  The two demand different recoveries (retry
    vs. reattach), so they must be distinguishable. *)
let test_chan_timeout_vs_disconnect () =
  let a, _b = Chan.pair () in
  (match Chan.recv_exactly ~deadline:3 a 1 with
  | exception Chan.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout on a silent but live link");
  check Alcotest.bool "still connected" true (Chan.is_connected a);
  Chan.disconnect a;
  match Chan.recv_exactly ~deadline:3 a 1 with
  | exception Chan.Disconnected -> ()
  | exception Chan.Timeout -> Alcotest.fail "dead link misreported as timeout"
  | _ -> Alcotest.fail "expected Disconnected"

(** The deadline is configurable: a pump that needs several calls to
    produce output succeeds under a generous deadline and times out under
    a stingy one. *)
let test_chan_deadline () =
  let slow_pair () =
    let a, b = Chan.pair () in
    let countdown = ref 5 in
    Chan.set_pump a (fun () ->
        decr countdown;
        if !countdown <= 0 then Chan.send b "!");
    a
  in
  (match Chan.recv_exactly ~deadline:2 (slow_pair ()) 1 with
  | exception Chan.Timeout -> ()
  | _ -> Alcotest.fail "deadline 2 should time out");
  check Alcotest.string "deadline 10 succeeds" "!"
    (Chan.recv_exactly ~deadline:10 (slow_pair ()) 1)

(* --- protocol codec (pure) -------------------------------------------------- *)

let roundtrip_request (r : Proto.request) =
  Proto.decode_request (Proto.encode_request r) = Ok r

let roundtrip_reply (r : Proto.reply) =
  Proto.decode_reply (Proto.encode_reply r) = Ok r

let test_request_roundtrips () =
  List.iter
    (fun r -> Alcotest.(check bool) "request" true (roundtrip_request r))
    [ Proto.Hello;
      Proto.Fetch { space = 'd'; addr = 0x123456; size = 4 };
      Proto.Fetch { space = 'c'; addr = 0; size = 10 };
      Proto.Store { space = 'd'; addr = 0xffff; bytes = "\x01\x02\x03\x04" };
      Proto.Continue; Proto.Step; Proto.Kill; Proto.Detach;
      Proto.Dump { offset = 0 }; Proto.Dump { offset = 0x12345 };
      Proto.Set_cond { addr = 0x1000; prog = "P\x01\x00\x00\x00" };
      Proto.Set_cond { addr = 0; prog = String.make Proto.max_cond_prog 'q' };
      Proto.Clear_cond { addr = 0x1000 };
      Proto.Record { spacing = 1 }; Proto.Record { spacing = 100_000 };
      Proto.Fetch_trace { offset = 0 }; Proto.Fetch_trace { offset = 0xabcdef } ]

let test_reply_roundtrips () =
  List.iter
    (fun r -> Alcotest.(check bool) "reply" true (roundtrip_reply r))
    [ Proto.Hello_reply { arch = "mips"; state = Proto.St_running; can_step = true };
      Proto.Hello_reply
        { arch = "vax"; state = Proto.St_stopped { signal = 5; code = 0; ctx_addr = 99 };
          can_step = false };
      Proto.Hello_reply { arch = "m68k"; state = Proto.St_exited 3; can_step = true };
      Proto.Fetched "\xde\xad\xbe\xef";
      Proto.Stored;
      Proto.Event { signal = 11; code = 0x1234; ctx_addr = 0x1f0000 };
      Proto.Exit_event 0;
      Proto.Core_chunk { total = 0; offset = 0; chunk = "" };
      Proto.Core_chunk { total = 9000; offset = 4096; chunk = String.make 2048 'x' };
      Proto.Cond_hit { signal = 5; code = 0; ctx_addr = 0x1f0000; suppressed = 12345 };
      Proto.Trace_chunk { total = 0; offset = 0; chunk = "" };
      Proto.Trace_chunk
        { total = 5000; offset = 2048; chunk = String.make Proto.max_trace_chunk 't' };
      Proto.Nub_error "no such space" ]

(** Out-of-range size fields are rejected with [Error], not served. *)
let test_decode_rejects_bad_sizes () =
  let fetch size =
    (* hand-built F frame: opcode, space, addr, size byte *)
    "Fd\x00\x20\x00\x00" ^ String.make 1 (Char.chr size)
  in
  (match Proto.decode_request (fetch 4) with
  | Ok (Proto.Fetch { size = 4; _ }) -> ()
  | _ -> Alcotest.fail "well-formed fetch should decode");
  List.iter
    (fun size ->
      match Proto.decode_request (fetch size) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "fetch size %d accepted" size)
    [ 0; 17; 255 ];
  match Proto.decode_request "Z" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown opcode accepted"

(** A [Set_cond] whose length field promises nothing (0) or more than
    {!Proto.max_cond_prog} is malformed at the protocol layer: it never
    reaches the bytecode decoder, let alone the verifier. *)
let test_decode_rejects_bad_cond_lengths () =
  let u32 v =
    String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))
  in
  let set_cond len body = "B" ^ u32 0x1000 ^ u32 len ^ body in
  (match Proto.decode_request (set_cond 1 "P") with
  | Ok (Proto.Set_cond { addr = 0x1000; prog = "P" }) -> ()
  | _ -> Alcotest.fail "well-formed Set_cond should decode");
  List.iter
    (fun len ->
      match Proto.decode_request (set_cond len (String.make (min len 4096) 'x')) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "condition length %d accepted" len)
    [ 0; Proto.max_cond_prog + 1; 0x100000 ]

let gen_request : Proto.request QCheck.arbitrary =
  QCheck.oneof
    [ QCheck.always Proto.Hello;
      QCheck.map
        (fun (addr, size, code_space) ->
          Proto.Fetch { space = (if code_space then 'c' else 'd'); addr; size })
        QCheck.(triple (int_bound 0xffffff) (int_range 1 16) bool);
      QCheck.map
        (fun (addr, bytes) -> Proto.Store { space = 'd'; addr; bytes })
        QCheck.(pair (int_bound 0xffffff)
                  (string_gen_of_size (QCheck.Gen.int_range 1 16) QCheck.Gen.char));
      QCheck.always Proto.Continue; QCheck.always Proto.Step;
      QCheck.always Proto.Kill; QCheck.always Proto.Detach;
      QCheck.map (fun offset -> Proto.Dump { offset }) QCheck.(int_bound 0xffffff);
      QCheck.map
        (fun (addr, prog) -> Proto.Set_cond { addr; prog })
        QCheck.(pair (int_bound 0xffffff)
                  (string_gen_of_size (QCheck.Gen.int_range 1 Proto.max_cond_prog)
                     QCheck.Gen.char));
      QCheck.map (fun addr -> Proto.Clear_cond { addr }) QCheck.(int_bound 0xffffff) ]

let prop_request_roundtrip =
  Testkit.qtest "random requests roundtrip" ~count:500 gen_request roundtrip_request

(** Totality: the decoders return [Error] on junk, they never raise. *)
let prop_decode_never_raises =
  Testkit.qtest "decoders never raise on arbitrary bytes" ~count:1000
    QCheck.(string_gen QCheck.Gen.char)
    (fun s ->
      (match Proto.decode_request s with Ok _ | Error _ -> true)
      && (match Proto.decode_reply s with Ok _ | Error _ -> true))

(** Every strict prefix of a valid encoding is malformed — truncation is
    detected cleanly at any cut point. *)
let prop_truncation_detected =
  Testkit.qtest "every strict prefix decodes to Error" ~count:300 gen_request
    (fun r ->
      let enc = Proto.encode_request r in
      let ok = ref true in
      for n = 0 to String.length enc - 1 do
        (match Proto.decode_request (String.sub enc 0 n) with
        | Error _ -> ()
        | Ok _ -> ok := false)
      done;
      !ok)

(* --- frames ----------------------------------------------------------------- *)

let frame_testable : Frame.recv_status Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | `Frame f -> Fmt.pf ppf "Frame(seq %d, %S)" f.Frame.fr_seq f.Frame.fr_payload
      | `Corrupt m -> Fmt.pf ppf "Corrupt(%s)" m
      | `Incomplete -> Fmt.string ppf "Incomplete")
    (fun a b ->
      match (a, b) with
      | `Frame f, `Frame g -> f.Frame.fr_seq = g.Frame.fr_seq && f.Frame.fr_payload = g.Frame.fr_payload
      | `Corrupt _, `Corrupt _ -> true
      | `Incomplete, `Incomplete -> true
      | _ -> false)

let test_frame_roundtrip () =
  let a, b = Chan.pair () in
  Frame.send a ~seq:7 "payload bytes";
  check frame_testable "roundtrip" (`Frame { Frame.fr_seq = 7; fr_payload = "payload bytes" })
    (Frame.try_recv b);
  check frame_testable "drained" `Incomplete (Frame.try_recv b)

let test_frame_detects_corruption () =
  let sealed = Frame.seal ~seq:3 "precious cargo" in
  (* flip one bit in every position; the receiver must never deliver a
     damaged payload as a valid frame *)
  for i = 0 to String.length sealed - 1 do
    for bit = 0 to 7 do
      let mangled = Bytes.of_string sealed in
      Bytes.set mangled i (Char.chr (Char.code (Bytes.get mangled i) lxor (1 lsl bit)));
      let a, b = Chan.pair () in
      Chan.deliver a (Bytes.to_string mangled);
      match Frame.try_recv b with
      | `Frame { Frame.fr_seq = 3; fr_payload = "precious cargo" } ->
          Alcotest.failf "bit %d of byte %d: damaged frame accepted" bit i
      | `Frame f -> Alcotest.failf "byte %d: wrong frame decoded (seq %d)" i f.Frame.fr_seq
      | `Corrupt _ | `Incomplete -> ()
    done
  done

(** Garbage before a frame is skipped; the frame after it is recovered. *)
let test_frame_resync_after_garbage () =
  let a, b = Chan.pair () in
  Chan.deliver a "some leading junk with no magic";
  Frame.send a ~seq:9 "found me";
  check frame_testable "resync" (`Frame { Frame.fr_seq = 9; fr_payload = "found me" })
    (Frame.try_recv b)

(** A truncated frame followed by its retry: the receiver reports damage
    (possibly over several calls) but eventually yields the retry intact. *)
let test_frame_resync_after_truncation () =
  let a, b = Chan.pair () in
  let sealed = Frame.seal ~seq:4 "first try" in
  Chan.deliver a (String.sub sealed 0 (String.length sealed - 3));
  Frame.send a ~seq:4 "second try";
  let rec drain n =
    if n > 100 then Alcotest.fail "no frame recovered after truncation"
    else
      match Frame.try_recv b with
      | `Frame { Frame.fr_seq = 4; fr_payload = "second try" } -> ()
      | `Frame f -> Alcotest.failf "recovered wrong payload %S" f.Frame.fr_payload
      | `Corrupt _ -> drain (n + 1)
      | `Incomplete -> Alcotest.fail "gave up before recovering the retry"
  in
  drain 0

(** A length field claiming an absurd payload is damage, not a reason to
    wait forever. *)
let test_frame_bogus_length () =
  let a, b = Chan.pair () in
  let bogus =
    let open Frame in
    Printf.sprintf "%c%c" magic0 magic1
    ^ u32_le 1 ^ u32_le 0x40000000 ^ u32_le 0xdeadbeef
  in
  Chan.deliver a bogus;
  (match Frame.try_recv b with
  | `Corrupt _ -> ()
  | `Frame _ -> Alcotest.fail "bogus length accepted"
  | `Incomplete -> Alcotest.fail "bogus length stalls the stream");
  (* the stream recovers for the next real frame *)
  Frame.send a ~seq:2 "after the storm";
  let rec drain n =
    if n > 100 then Alcotest.fail "never recovered"
    else
      match Frame.try_recv b with
      | `Frame { Frame.fr_seq = 2; fr_payload = "after the storm" } -> ()
      | `Frame _ -> Alcotest.fail "wrong frame"
      | `Corrupt _ -> drain (n + 1)
      | `Incomplete -> Alcotest.fail "stalled"
  in
  drain 0

(* --- nub service ------------------------------------------------------------ *)

let stopped_nub arch =
  let proc = Proc.create (Target.of_arch arch) in
  let nub = Nub.create proc in
  proc.Proc.status <- Proc.Stopped (SIGTRAP, 0);
  Nub.save_context nub;
  let dbg, nubend = Chan.pair () in
  Nub.attach nub nubend;
  Chan.set_pump dbg (fun () -> Nub.pump nub);
  (proc, nub, dbg)

(* fresh sequence numbers across every test rpc; the nub only requires
   that they increase within one connection *)
let seq_counter = ref 0

let rpc dbg req =
  incr seq_counter;
  Frame.send dbg ~seq:!seq_counter (Proto.encode_request req);
  match Frame.recv dbg with
  | Ok f -> (
      match Proto.decode_reply f.Frame.fr_payload with
      | Ok r -> r
      | Error m -> Alcotest.failf "undecodable reply: %s" m)
  | Error m -> Alcotest.failf "corrupt reply frame: %s" m

(** Values travel little-endian regardless of target byte order. *)
let test_fetch_little_endian_wire () =
  List.iter
    (fun arch ->
      let proc, _, dbg = stopped_nub arch in
      Ram.set_u32 proc.Proc.ram 0x2000 0x11223344l;
      match rpc dbg (Proto.Fetch { space = 'd'; addr = 0x2000; size = 4 }) with
      | Proto.Fetched bytes ->
          check Alcotest.string
            (Arch.name arch ^ " wire value is little-endian")
            "\x44\x33\x22\x11" bytes
      | _ -> Alcotest.fail "bad reply")
    Arch.all

let test_store_roundtrip_all_archs () =
  List.iter
    (fun arch ->
      let proc, _, dbg = stopped_nub arch in
      (match rpc dbg (Proto.Store { space = 'd'; addr = 0x3000; bytes = "\x78\x56\x34\x12" }) with
      | Proto.Stored -> ()
      | _ -> Alcotest.fail "store failed");
      check Alcotest.int32 (Arch.name arch ^ " stored value") 0x12345678l
        (Ram.get_u32 proc.Proc.ram 0x3000))
    Arch.all

let test_hello () =
  let _, _, dbg = stopped_nub M68k in
  match rpc dbg Proto.Hello with
  | Proto.Hello_reply { arch = "m68k"; state = Proto.St_stopped { signal = 5; _ }; _ } -> ()
  | r -> Alcotest.failf "bad hello reply %s" (Fmt.str "%a" Proto.pp_reply r)

let test_bad_space_error () =
  let _, _, dbg = stopped_nub Vax in
  match rpc dbg (Proto.Fetch { space = 'q'; addr = 0; size = 4 }) with
  | Proto.Nub_error _ -> ()
  | _ -> Alcotest.fail "expected error for bad space"

(** At-most-once: retrying a request under the same sequence number gets
    the cached reply back, it does not re-execute.  (A re-executed
    [Store] is idempotent, so probe with a fetch of a location the retry
    mutates in between — if the nub re-executed, the second reply would
    differ.) *)
let test_duplicate_request_not_reexecuted () =
  let proc, _, dbg = stopped_nub Mips in
  Ram.set_u32 proc.Proc.ram 0x4000 1l;
  incr seq_counter;
  let seq = !seq_counter in
  let payload = Proto.encode_request (Proto.Fetch { space = 'd'; addr = 0x4000; size = 4 }) in
  Frame.send dbg ~seq payload;
  let r1 = Frame.recv dbg in
  (* mutate the fetched location, then replay the same request *)
  Ram.set_u32 proc.Proc.ram 0x4000 2l;
  Frame.send dbg ~seq payload;
  let r2 = Frame.recv dbg in
  match (r1, r2) with
  | Ok f1, Ok f2 ->
      check Alcotest.string "cached reply retransmitted, not re-executed"
        f1.Frame.fr_payload f2.Frame.fr_payload;
      check Alcotest.int "same seq" f1.Frame.fr_seq f2.Frame.fr_seq
  | _ -> Alcotest.fail "frame recv failed"

(** The per-seq reply cache is bounded, and a newer request acknowledges
    (and evicts) every entry below its sequence number: a long session
    cannot grow the nub's memory without limit, and replays that old are
    impossible anyway — the transport never reuses an acknowledged seq. *)
let test_reply_cache_bounded () =
  let _, nub, dbg = stopped_nub Mips in
  for _ = 1 to (3 * Nub.max_cached_replies) + 1 do
    match rpc dbg (Proto.Fetch { space = 'd'; addr = 0x4000; size = 4 }) with
    | Proto.Fetched _ -> ()
    | r -> Alcotest.failf "fetch failed: %s" (Fmt.str "%a" Proto.pp_reply r)
  done;
  Alcotest.(check bool) "cache within its bound" true
    (Nub.cached_replies nub <= Nub.max_cached_replies);
  (* each fresh request acknowledged its predecessors: steady state is
     exactly the in-flight entry *)
  check Alcotest.int "acknowledged entries evicted" 1 (Nub.cached_replies nub);
  (* the bound does not break at-most-once for the live request *)
  incr seq_counter;
  let seq = !seq_counter in
  let payload = Proto.encode_request (Proto.Fetch { space = 'd'; addr = 0x4000; size = 4 }) in
  Frame.send dbg ~seq payload;
  let r1 = Frame.recv dbg in
  Frame.send dbg ~seq payload;
  let r2 = Frame.recv dbg in
  match (r1, r2) with
  | Ok f1, Ok f2 ->
      check Alcotest.string "retransmit still served from cache" f1.Frame.fr_payload
        f2.Frame.fr_payload
  | _ -> Alcotest.fail "frame recv failed"

(** A corrupt request elicits a [Nub_error] reply (so the debugger's
    retry logic wakes up), never an exception in the nub. *)
let test_corrupt_request_gets_error_reply () =
  let _, _, dbg = stopped_nub Sparc in
  incr seq_counter;
  Frame.send dbg ~seq:!seq_counter "Zmalformed";
  match Frame.recv dbg with
  | Ok f -> (
      match Proto.decode_reply f.Frame.fr_payload with
      | Ok (Proto.Nub_error _) -> ()
      | r ->
          Alcotest.failf "expected Nub_error, got %s"
            (match r with Ok r -> Fmt.str "%a" Proto.pp_reply r | Error m -> m))
  | Error m -> Alcotest.failf "corrupt reply frame: %s" m

(** The SIM-MIPS kernel saves FP registers least-significant-word first;
    the nub swaps on 8-byte accesses to the saved-FP area, so the debugger
    sees a normal double. *)
let test_mips_fp_word_swap () =
  let proc = Proc.create (Target.of_arch Mips) in
  Cpu.set_freg proc.Proc.cpu 3 1.2345;
  let nub = Nub.create proc in
  proc.Proc.status <- Proc.Stopped (SIGTRAP, 0);
  Nub.save_context nub;
  let dbg, nubend = Chan.pair () in
  Nub.attach nub nubend;
  Chan.set_pump dbg (fun () -> Nub.pump nub);
  let t = Target.of_arch Mips in
  let addr = Nub.ctx_base + t.Target.ctx_freg_off 3 in
  (* raw words in memory are swapped (LSW first) *)
  let bits = Int64.bits_of_float 1.2345 in
  check Alcotest.int32 "LSW stored first" (Int64.to_int32 bits)
    (Ram.get_u32 proc.Proc.ram addr);
  (* ... but an 8-byte wire fetch sees a proper little-endian double *)
  match rpc dbg (Proto.Fetch { space = 'd'; addr; size = 8 }) with
  | Proto.Fetched bytes ->
      let v = Ldb_util.Endian.get_u64 Little (Bytes.of_string bytes) 0 in
      check (Alcotest.float 0.0) "double reassembled" 1.2345 (Int64.float_of_bits v)
  | _ -> Alcotest.fail "fetch failed"

let test_context_save_restore () =
  List.iter
    (fun arch ->
      let proc = Proc.create (Target.of_arch arch) in
      let nub = Nub.create proc in
      Cpu.set_reg proc.Proc.cpu 3 111l;
      Cpu.set_freg proc.Proc.cpu 1 9.5;
      Proc.set_pc proc 0x1234;
      proc.Proc.status <- Proc.Stopped (SIGTRAP, 0);
      Nub.save_context nub;
      (* clobber, then restore *)
      Cpu.set_reg proc.Proc.cpu 3 0l;
      Cpu.set_freg proc.Proc.cpu 1 0.0;
      Proc.set_pc proc 0;
      Nub.restore_context nub;
      let an = Arch.name arch in
      check Alcotest.int32 (an ^ " reg restored") 111l (Cpu.reg proc.Proc.cpu 3);
      check (Alcotest.float 0.0) (an ^ " freg restored") 9.5 (Cpu.freg proc.Proc.cpu 1);
      check Alcotest.int (an ^ " pc restored") 0x1234 (Proc.pc proc))
    Arch.all

(* --- conditional breakpoints (nub side) ------------------------------------- *)

module Bpcode = Ldb_nub.Bpcode

(** A verified program is stored; clearing forgets it. *)
let test_set_cond_stores_verified () =
  let _, nub, dbg = stopped_nub Mips in
  let prog = Bpcode.encode [| Bpcode.Push 1l |] in
  (match rpc dbg (Proto.Set_cond { addr = 0x1000; prog }) with
  | Proto.Stored -> ()
  | r -> Alcotest.failf "verified condition refused: %s" (Fmt.str "%a" Proto.pp_reply r));
  check Alcotest.int "condition installed" 1 (Nub.conditions nub);
  (match rpc dbg (Proto.Clear_cond { addr = 0x1000 }) with
  | Proto.Stored -> ()
  | _ -> Alcotest.fail "clear failed");
  check Alcotest.int "condition forgotten" 0 (Nub.conditions nub)

(** The nub re-runs the verifier on receipt: a decodable program with a
    backward jump is refused with a typed error, and nothing is stored —
    a hostile debugger cannot plant a loop in the target. *)
let test_set_cond_reverifies () =
  let _, nub, dbg = stopped_nub Sparc in
  let hostile = Bpcode.encode [| Bpcode.Push 1l; Bpcode.Jmp (-2) |] in
  (match rpc dbg (Proto.Set_cond { addr = 0x1000; prog = hostile }) with
  | Proto.Nub_error m ->
      Alcotest.(check bool) ("mentions verification: " ^ m) true
        (let sub = "unverified" in
         let nn = String.length sub in
         let rec go i =
           i + nn <= String.length m && (String.sub m i nn = sub || go (i + 1))
         in
         go 0)
  | r -> Alcotest.failf "hostile condition got %s" (Fmt.str "%a" Proto.pp_reply r));
  check Alcotest.int "nothing stored" 0 (Nub.conditions nub)

(** Bytes that do not decode as bytecode are refused before verification. *)
let test_set_cond_undecodable () =
  let _, nub, dbg = stopped_nub Vax in
  (match rpc dbg (Proto.Set_cond { addr = 0x1000; prog = "\xff\xfe\xfd" }) with
  | Proto.Nub_error _ -> ()
  | _ -> Alcotest.fail "undecodable condition accepted");
  check Alcotest.int "nothing stored" 0 (Nub.conditions nub)

(** Conditions belong to the debugger that shipped them: a reattach (new
    debugger instance) starts with an empty condition table. *)
let test_conds_reset_on_attach () =
  let _, nub, dbg = stopped_nub M68k in
  let prog = Bpcode.encode [| Bpcode.Push 1l |] in
  (match rpc dbg (Proto.Set_cond { addr = 0x2000; prog }) with
  | Proto.Stored -> ()
  | _ -> Alcotest.fail "set failed");
  check Alcotest.int "installed" 1 (Nub.conditions nub);
  Chan.disconnect dbg;
  let dbg2, nubend2 = Chan.pair () in
  Nub.attach nub nubend2;
  Chan.set_pump dbg2 (fun () -> Nub.pump nub);
  check Alcotest.int "reset on reattach" 0 (Nub.conditions nub)

(** A debugger crash must not lose target state: the nub keeps the
    process, and a new debugger instance can attach. *)
let test_reconnect_preserves_state () =
  let proc, nub, dbg1 = stopped_nub Sparc in
  Ram.set_u32 proc.Proc.ram 0x2000 4242l;
  (* debugger 1 "crashes" *)
  Chan.disconnect dbg1;
  (* a new debugger connects *)
  let dbg2, nubend2 = Chan.pair () in
  Nub.attach nub nubend2;
  Chan.set_pump dbg2 (fun () -> Nub.pump nub);
  (match rpc dbg2 Proto.Hello with
  | Proto.Hello_reply { state = Proto.St_stopped _; _ } -> ()
  | _ -> Alcotest.fail "state not preserved");
  match rpc dbg2 (Proto.Fetch { space = 'd'; addr = 0x2000; size = 4 }) with
  | Proto.Fetched "\x92\x10\x00\x00" -> ()
  | Proto.Fetched b -> Alcotest.failf "wrong bytes %S" b
  | _ -> Alcotest.fail "fetch after reconnect failed"

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "nub"
    [
      ( "channels",
        [ case "basic" test_chan_basic; case "pump" test_chan_pump;
          case "disconnect" test_chan_disconnect;
          case "timeout vs disconnect" test_chan_timeout_vs_disconnect;
          case "configurable deadline" test_chan_deadline ] );
      ( "protocol",
        [ case "requests" test_request_roundtrips; case "replies" test_reply_roundtrips;
          case "bad sizes rejected" test_decode_rejects_bad_sizes;
          case "bad condition lengths rejected" test_decode_rejects_bad_cond_lengths;
          prop_request_roundtrip; prop_decode_never_raises; prop_truncation_detected ] );
      ( "frames",
        [ case "roundtrip" test_frame_roundtrip;
          case "corruption detected" test_frame_detects_corruption;
          case "resync after garbage" test_frame_resync_after_garbage;
          case "resync after truncation" test_frame_resync_after_truncation;
          case "bogus length" test_frame_bogus_length ] );
      ( "service",
        [ case "hello" test_hello;
          case "fetch is little-endian on the wire" test_fetch_little_endian_wire;
          case "store on all targets" test_store_roundtrip_all_archs;
          case "bad space" test_bad_space_error;
          case "duplicate request not re-executed" test_duplicate_request_not_reexecuted;
          case "reply cache bounded, acks evict" test_reply_cache_bounded;
          case "corrupt request gets error reply" test_corrupt_request_gets_error_reply;
          case "mips fp word swap" test_mips_fp_word_swap;
          case "context save/restore" test_context_save_restore;
          case "set_cond stores verified programs" test_set_cond_stores_verified;
          case "set_cond re-verifies on receipt" test_set_cond_reverifies;
          case "set_cond refuses undecodable bytes" test_set_cond_undecodable;
          case "conditions reset on reattach" test_conds_reset_on_attach;
          case "reconnect preserves state" test_reconnect_preserves_state ] );
    ]
