(** Tests for the embedded PostScript dialect: scanner, core operators,
    control flow, dictionaries, the stopped mechanism, deferred execution,
    the prettyprinter, and the debugging extensions. *)

module I = Ldb_pscript.Interp
module V = Ldb_pscript.Value
module Ps = Ldb_pscript.Ps

let check = Alcotest.check

(** Run source and return printed output. *)
let out src =
  let t = Ps.create () in
  I.run_string t src;
  I.take_output t

(** Run source and return the top of stack as text. *)
let top src =
  let t = Ps.create () in
  I.run_string t src;
  V.to_text (I.pop t)

let expect name src expected = check Alcotest.string name expected (out src)
let expect_top name src expected = check Alcotest.string name expected (top src)

(* --- scanner ------------------------------------------------------------- *)

let test_numbers () =
  expect_top "int" "42" "42";
  expect_top "negative" "-7" "-7";
  expect_top "real" "2.5" "2.5";
  expect_top "exponent" "1e3" "1000.0";
  expect_top "radix 16" "16#2a" "42";
  expect_top "radix 8" "8#17" "15";
  expect_top "radix 2" "2#1010" "10";
  expect_top "radix with letters" "16#00ff" "255"

let test_strings () =
  expect_top "simple" "(hello)" "hello";
  expect_top "nested parens" "(a(b)c)" "a(b)c";
  expect_top "escapes" {|(x\ny)|} "x\ny";
  expect_top "octal escape" {|(\101)|} "A";
  expect "string length" "(hi(nested)) length =" "10\n"

let test_comments () = expect_top "comment" "1 % junk ( ) { }\n2 add" "3"

let test_names () =
  expect_top "literal name" "/foo" "foo";
  expect "executable name undefined" "" "";
  match out "undefined_name_xyz" with
  | exception V.Error ("undefined", _) -> ()
  | _ -> Alcotest.fail "undefined name did not raise"

(* --- arithmetic and comparison ---------------------------------------------- *)

let test_arith () =
  expect_top "add" "1 2 add" "3";
  expect_top "mixed add" "1 2.5 add" "3.5";
  expect_top "sub" "10 3 sub" "7";
  expect_top "idiv" "17 5 idiv" "3";
  expect_top "mod" "17 5 mod" "2";
  expect_top "div real" "1 2 div" "0.5";
  expect_top "neg" "5 neg" "-5";
  expect_top "abs" "-3.5 abs" "3.5";
  expect_top "bitshift left" "1 4 bitshift" "16";
  expect_top "bitshift right" "16 -4 bitshift" "1";
  expect_top "sqrt" "16 sqrt" "4.0"

let test_compare () =
  expect_top "lt" "1 2 lt" "true";
  expect_top "string compare" "(abc) (abd) lt" "true";
  expect_top "eq num" "2 2.0 eq" "true";
  expect_top "ne" "1 2 ne" "true";
  expect_top "and bool" "true false and" "false";
  expect_top "and int" "12 10 and" "8";
  expect_top "not" "true not" "false"

(* --- stack ops ----------------------------------------------------------------- *)

let test_stack () =
  expect_top "exch" "1 2 exch pop" "2";
  expect_top "dup" "5 dup add" "10";
  expect_top "index" "10 20 30 2 index" "10";
  expect_top "copy" "1 2 2 copy pop pop pop" "1";
  expect "roll" "1 2 3 3 -1 roll pstack" "1\n3\n2\n";
  expect "count" "9 9 9 count = clear" "3\n";
  expect "counttomark" "mark 4 5 6 counttomark = cleartomark" "3\n"

(* --- control flow ----------------------------------------------------------------- *)

let test_control () =
  expect_top "if true" "1 true {10 add} if" "11";
  expect_top "ifelse" "false {1} {2} ifelse" "2";
  expect "for" "0 1 4 { cvs print ( ) print } for" "0 1 2 3 4 ";
  expect "for step" "10 -2 4 { cvs print ( ) print } for" "10 8 6 4 ";
  expect "repeat" "3 { (x) print } repeat" "xxx";
  expect_top "loop exit" "0 { 1 add dup 5 ge { exit } if } loop" "5";
  expect_top "exit in for" "0 1 100 { dup 3 ge { exit } if pop } for" "3";
  expect_top "stopped catches stop" "{ 1 2 stop 99 } stopped" "true";
  expect_top "stopped false" "{ 42 } stopped not" "true"

let test_forall () =
  expect "array forall" "[1 2 3] { cvs print } forall" "123";
  expect "string forall" "(AB) { cvs print ( ) print } forall" "65 66 ";
  expect "dict forall" "<< /b 2 /a 1 >> { exch print cvs print } forall" "a1b2"

(* --- dictionaries ------------------------------------------------------------------ *)

let test_dicts () =
  expect_top "def and lookup" "/x 42 def x" "42";
  expect_top "dict literal" "<< /a 1 /b 2 >> /b get" "2";
  expect_top "nested dict" "<< /t << /u 9 >> >> /t get /u get" "9";
  expect_top "known true" "<< /a 1 >> /a known" "true";
  expect_top "known false" "<< /a 1 >> /z known" "false";
  expect_top "begin/end scoping" "3 dict begin /v 7 def v end" "7";
  expect_top "length" "<< /a 1 /b 2 /c 3 >> length" "3";
  expect_top "store rebinds" "/g 1 def 5 dict begin /g 2 store end g" "2";
  expect_top "where finds" "/w 1 def /w where { /w get } { -1 } ifelse" "1";
  expect_top "integer keys" "<< 5 (five) >> 5 get" "five"

let test_dict_stack_rebinding () =
  (* the paper's architecture-switch mechanism: pushing a dictionary
     rebinds machine-dependent names *)
  expect_top "rebinding"
    "/Regset0 (r) def /archdict << /Regset0 (q) >> def archdict begin Regset0 end" "q"

(* --- arrays, procedures, conversion -------------------------------------------------- *)

let test_arrays () =
  expect_top "array get" "[10 20 30] 1 get" "20";
  expect_top "array put" "[10 20 30] dup 1 99 put 1 get" "99";
  expect_top "array length" "5 array length" "5";
  expect_top "aload" "[7 8] aload pop add" "15";
  expect_top "astore" "1 2 2 array astore 0 get" "1"

let test_exec_attr () =
  expect_top "cvx string executes" "(1 2 add) cvx exec" "3";
  expect_top "literal proc pushed" "{ 1 2 add } exec" "3";
  expect_top "xcheck proc" "{ } xcheck" "true";
  expect_top "xcheck literal" "[ ] xcheck" "false";
  expect_top "cvlit prevents execution" "{ 1 } cvlit type" "arraytype";
  (* executing a literal object pushes it: procedures interpreted at most
     once can be replaced with their results *)
  expect_top "literal replacement" "/p { 40 2 add } def /r p def r" "42"

let test_conversions () =
  expect_top "cvi real" "3.99 cvi" "3";
  expect_top "cvi string" "(123) cvi" "123";
  expect_top "cvr" "2 cvr" "2.0";
  expect_top "cvs" "17 cvs length" "2";
  expect_top "cvn" "(foo) cvn" "foo";
  expect_top "type int" "3 type" "integertype";
  expect_top "type mem" "LocalMemory type" "memorytype"

let test_immutable_strings () =
  match out "(abc) 0 65 put" with
  | exception V.Error ("invalidaccess", _) -> ()
  | _ -> Alcotest.fail "string put should be invalidaccess"

(* --- deferral (Sec. 5) ---------------------------------------------------------------- *)

let test_deferred_execution () =
  (* a quoted body reads as a string, then executes on demand *)
  expect_top "deferred" "/body (/answer 42 def) def body cvx exec answer" "42"

let test_deferred_nested_strings () =
  let t = Ps.create () in
  (* emulate a deferred symbol table body containing strings *)
  let inner = "/name (fib.c) def" in
  let escaped = Ldb_cc.Psemit.ps_escape inner in
  I.run_string t (Printf.sprintf "/b (%s) def b cvx exec name" escaped);
  check Alcotest.string "nested" "fib.c" (V.to_text (I.pop t))

let test_token_cache () =
  let t = Ps.create () in
  let _, misses0 = I.scan_stats t in
  I.run_string t "/v 1 def";
  let hits1, misses1 = I.scan_stats t in
  (* a string body is scanned exactly once... *)
  check Alcotest.int "first run scans" (misses0 + 1) misses1;
  I.run_string t "/v 1 def";
  I.run_string t "/v 1 def";
  let hits2, misses2 = I.scan_stats t in
  (* ...and re-executions reuse the cached token array *)
  check Alcotest.int "re-runs do not rescan" misses1 misses2;
  check Alcotest.int "re-runs hit the cache" (hits1 + 2) hits2

let test_token_cache_semantics () =
  (* cached re-execution must behave exactly like a fresh scan, including
     procedure collection and error positions *)
  let t = Ps.create () in
  let src = "/counter counter 1 add def { 1 2 add } exec" in
  I.run_string t "/counter 0 def";
  I.run_string t src;
  I.run_string t src;
  check Alcotest.string "sum" "3" (V.to_text (I.pop t));
  check Alcotest.string "sum" "3" (V.to_text (I.pop t));
  I.run_string t "counter";
  check Alcotest.string "executed twice" "2" (V.to_text (I.pop t))

(* --- prettyprinter ------------------------------------------------------------------------ *)

let test_prettyprinter () =
  let o = out "20 PPWidth ({) Put 0 Begin 0 1 9 { dup 0 ne {(, ) Put 0 Break} if cvs Put } for (}) Put End" in
  Alcotest.(check bool) "wrapped" true (String.contains o '\n');
  Alcotest.(check bool) "has content" true (String.length o > 20)

(* --- debugging extensions ------------------------------------------------------------------- *)

let test_locations () =
  expect_top "Absolute offset" "30 (r) Absolute LocOffset" "30";
  expect_top "Absolute space" "30 (r) Absolute LocSpace" "r";
  expect_top "Shifted" "100 (d) Absolute 8 Shifted LocOffset" "108";
  expect_top "DataLoc" "64 DataLoc LocSpace" "d";
  expect_top "Immediate fetch" "/m LocalMemory def m 1234 Immediate FetchI32" "1234"

let test_fetch_store () =
  expect_top "i32" "/m LocalMemory def m 0 DataLoc -42 StoreI32 m 0 DataLoc FetchI32" "-42";
  expect_top "u8" "/m LocalMemory def m 4 DataLoc 255 StoreI8 m 4 DataLoc FetchU8" "255";
  expect_top "i8 sign" "/m LocalMemory def m 4 DataLoc 255 StoreI8 m 4 DataLoc FetchI8" "-1";
  expect_top "i16" "/m LocalMemory def m 8 DataLoc -1000 StoreI16 m 8 DataLoc FetchI16" "-1000";
  expect_top "f64" "/m LocalMemory def m 16 DataLoc 2.5 StoreF64 m 16 DataLoc FetchF64" "2.5";
  expect_top "f32" "/m LocalMemory def m 24 DataLoc 1.5 StoreF32 m 24 DataLoc FetchF32" "1.5";
  expect_top "f80" "/m LocalMemory def m 32 DataLoc 0.1 StoreF80 m 32 DataLoc FetchF80" "0.1"

let test_fetch_string () =
  expect_top "FetchString"
    "/m LocalMemory def m 0 DataLoc 72 StoreI8 m 1 DataLoc 105 StoreI8 m 0 DataLoc 16 FetchString"
    "Hi"

let test_prelude_printers () =
  (* INT printer: mem loc typedict -> prints *)
  expect "INT printer"
    "/m LocalMemory def m 0 DataLoc 7 StoreI32 m 0 DataLoc << /printer {INT} >> print" "7";
  (* ARRAY printer over a little local array *)
  expect "ARRAY printer"
    {|/m LocalMemory def
      m 0 DataLoc 10 StoreI32 m 4 DataLoc 20 StoreI32 m 8 DataLoc 30 StoreI32
      m 0 DataLoc
      << /printer {ARRAY} /elemsize 4 /arraysize 12
         /elemtype << /printer {INT} >> >>
      print|}
    "{10, 20, 30}";
  (* STRUCT printer *)
  expect "STRUCT printer"
    {|/m LocalMemory def
      m 0 DataLoc 3 StoreI32 m 4 DataLoc 4 StoreI32
      m 0 DataLoc
      << /printer {STRUCT}
         /fields [ [ (x) 0 << /printer {INT} >> ] [ (y) 4 << /printer {INT} >> ] ] >>
      print|}
    "{x=3, y=4}";
  (* CHAR printer *)
  expect "CHAR printer"
    "/m LocalMemory def m 0 DataLoc 65 StoreI8 m 0 DataLoc << /printer {CHAR} >> print"
    "'A'"

let test_find_local () =
  expect_top "FindLocal hit"
    {|/S1 << /name (a) /uplink null >> def
      /S2 << /name (i) /uplink S1 >> def
      S2 (a) FindLocal { /name get } { (missing) } ifelse|}
    "a";
  expect_top "FindLocal miss"
    {|/S1 << /name (a) /uplink null >> def
      S1 (zz) FindLocal { (found) exch pop } { (missing) } ifelse|}
    "missing"

let test_concatstr () = expect_top "concatstr" "(foo) (bar) concatstr" "foobar"

let test_declsubst () =
  expect_top "array decl" "(int %s[20]) (a) DeclSubst" "int a[20]";
  expect_top "pointer decl" "(char *%s) (msg) DeclSubst" "char *msg";
  expect_top "no hole" "(double) (x) DeclSubst" "double x"

let test_interp_errors () =
  (match out "1 (x) add" with
  | exception V.Error ("typecheck", _) -> ()
  | _ -> Alcotest.fail "typecheck expected");
  (match out "pop" with
  | exception V.Error ("stackunderflow", _) -> ()
  | _ -> Alcotest.fail "stackunderflow expected");
  match out "[1 2] 5 get" with
  | exception V.Error ("rangecheck", _) -> ()
  | _ -> Alcotest.fail "rangecheck expected"

(* --- satellite fixes: roll, registration, positions ----------------------- *)

let test_roll_zero () =
  (* n = 0 is a no-op for any j, including negative *)
  expect_top "0 0" "1 2 0 0 roll" "2";
  expect_top "0 1" "1 2 0 1 roll" "2";
  expect_top "0 -1" "1 2 0 -1 roll" "2";
  expect_top "0 -5 empty-below" "7 0 -5 roll" "7";
  expect_top "plain" "1 2 3 3 -1 roll" "1"

let test_roll_negative_n () =
  match out "1 2 -1 5 roll" with
  | exception V.Error ("rangecheck", _) -> ()
  | _ -> Alcotest.fail "rangecheck expected for negative n"

let test_duplicate_registration () =
  let t = Ps.create () in
  match I.register_op t "dup" (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate registration must fail fast"

let test_registered_ops () =
  let t = Ps.create () in
  let ops = I.registered_ops t in
  List.iter
    (fun name ->
      if not (List.mem name ops) then Alcotest.failf "%s not in registered_ops" name)
    [ "pop"; "roll"; "ifelse"; "FetchI32"; "charstr"; "Put" ];
  (* constants are values, not operators *)
  if List.mem "true" ops then Alcotest.fail "true is not an operator"

let test_error_positions () =
  (* a runtime error names the line and column of the offending token *)
  match out "1 2 add\n(x) 1 add" with
  | exception V.Error ("typecheck", detail) ->
      if not (String.length detail > 0 && String.contains detail '[') then
        Alcotest.failf "no position in %S" detail;
      let has_pos =
        let re = ":2:7]" in
        let n = String.length detail and m = String.length re in
        let rec go i = i + m <= n && (String.sub detail i m = re || go (i + 1)) in
        go 0
      in
      if not has_pos then Alcotest.failf "expected line 2 col 7 in %S" detail
  | _ -> Alcotest.fail "typecheck expected"

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "pscript"
    [
      ( "scanner",
        [ case "numbers" test_numbers; case "strings" test_strings;
          case "comments" test_comments; case "names" test_names ] );
      ( "operators",
        [ case "arithmetic" test_arith; case "comparison" test_compare;
          case "stack" test_stack; case "conversions" test_conversions ] );
      ( "control",
        [ case "flow" test_control; case "forall" test_forall ] );
      ( "dicts",
        [ case "basics" test_dicts; case "rebinding" test_dict_stack_rebinding ] );
      ( "objects",
        [ case "arrays" test_arrays; case "exec attribute" test_exec_attr;
          case "immutable strings" test_immutable_strings ] );
      ( "deferral",
        [ case "basic" test_deferred_execution;
          case "nested strings" test_deferred_nested_strings;
          case "token cache" test_token_cache;
          case "token cache semantics" test_token_cache_semantics ] );
      ( "prettyprint", [ case "wrapping" test_prettyprinter ] );
      ( "debug extensions",
        [ case "locations" test_locations; case "fetch/store" test_fetch_store;
          case "fetch string" test_fetch_string; case "prelude printers" test_prelude_printers;
          case "FindLocal" test_find_local; case "concatstr" test_concatstr;
          case "DeclSubst" test_declsubst;
          case "errors" test_interp_errors ] );
      ( "regressions",
        [ case "roll n=0" test_roll_zero; case "roll n<0" test_roll_negative_n;
          case "duplicate registration" test_duplicate_registration;
          case "registered ops" test_registered_ops;
          case "error positions" test_error_positions ] );
    ]
