(** The debug server under supervision tests and a chaos soak.

    The contract: one server hosts many sessions; nothing one session's
    wire, symbol table or client does can kill the server or leak into
    another session.  Liveness is active (heartbeats escalate a silent
    peer through [Unresponsive] to [Down] with core salvage), overload is
    typed (admission and per-tick RPC budgets refuse with [Overloaded]),
    and sessions of one program share an image whose broken units are
    quarantined once for everyone.

    The soak is the acceptance criterion made executable: 64 sessions at
    a 5% fault rate with seeded random disconnects, stalls and kills,
    where every session not chosen as a victim must produce answers
    byte-identical to a fault-free single-session run, every victim must
    end in its typed terminal state, and the server survives it all.  The
    event log is written to a file so CI can keep it as an artifact. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Server = Ldb_ldb.Server
module Symtab = Ldb_ldb.Symtab
module Transport = Ldb_ldb.Transport
module Chan = Ldb_nub.Chan
module Faultchan = Ldb_nub.Faultchan

let check = Alcotest.check
let fib_sources = [ ("fib.c", Testkit.fib_c) ]

let ok what = function
  | Ok r -> r
  | Error r -> Alcotest.failf "%s refused: %s" what (Server.refusal_to_string r)

(** Launch a fresh process of [image] and open a server session on it
    over a clean channel. *)
let open_on (sv : Server.t) (image : Ldb_link.Link.image * string) ~name : int * Host.process
    =
  let p = Host.launch_image image in
  let id =
    ok ("open " ^ name)
      (Server.open_session sv ~name ~loader_ps:p.Host.hp_loader_ps
         (Host.open_channel p))
  in
  (id, p)

let session_exn sv id =
  match Server.session sv id with
  | Some s -> s
  | None -> Alcotest.failf "no session %d" id

(* --- shared image cache ------------------------------------------------------ *)

let two_unit_sources =
  [
    ( "a.c",
      {|
int bfun(int x);
int afun(int n)
{
    int a;
    a = n + 1;
    return a;
}
int main(void)
{
    printf("%d\n", bfun(afun(1)));
    return 0;
}
|}
    );
    ( "b.c",
      {|
int bfun(int x)
{
    int b;
    b = x * 2;
    return b;
}
|}
    );
  ]

(** Two sessions of one program share one image: the second open is a
    cache hit, the symbol table is physically shared, and a unit forced
    by one session's query is already forced for the other. *)
let test_image_cache_shared () =
  let sv = Server.create () in
  let image = Host.build_image ~arch:Arch.Mips two_unit_sources in
  let id1, _p1 = open_on sv image ~name:"one" in
  let id2, _p2 = open_on sv image ~name:"two" in
  let st = Server.stats sv in
  check Alcotest.int "one image loaded" 1 st.Server.sv_cache_misses;
  check Alcotest.int "second open hit the cache" 1 st.Server.sv_cache_hits;
  check Alcotest.int "one cached image" 1 (Server.cached_images sv);
  let st1 = (session_exn sv id1).Server.ss_tg.Ldb.tg_symtab in
  let st2 = (session_exn sv id2).Server.ss_tg.Ldb.tg_symtab in
  Alcotest.(check bool) "symtab physically shared" true (st1 == st2);
  (* session one forces a.c; the unit is forced for session two without
     another force *)
  ignore (ok "break afun" (Server.exec sv id1 (Server.Break_function "afun")));
  check Alcotest.(list string) "a.c forced once" [ "a.c" ] (Symtab.forced_units st1);
  let saved = !Symtab.force_hook in
  let forces = ref 0 in
  Symtab.force_hook := (fun _ -> incr forces);
  Fun.protect
    ~finally:(fun () -> Symtab.force_hook := saved)
    (fun () ->
      ignore (ok "break afun again" (Server.exec sv id2 (Server.Break_function "afun")));
      check Alcotest.int "no re-force for the second session" 0 !forces)

(** A unit quarantined in the shared image degrades exactly the queries
    that touch it, in every session, without re-forcing — and everything
    else keeps working. *)
let test_quarantine_shared () =
  let sv = Server.create () in
  let image = Host.build_image ~arch:Arch.Mips two_unit_sources in
  let id1, _p1 = open_on sv image ~name:"one" in
  let id2, _p2 = open_on sv image ~name:"two" in
  let st = (session_exn sv id1).Server.ss_tg.Ldb.tg_symtab in
  (* poison b.c as a failed force would *)
  Hashtbl.replace st.Symtab.quarantined "b.c" "poisoned by test";
  let saved = !Symtab.force_hook in
  let forced = ref [] in
  Symtab.force_hook := (fun f -> forced := f :: !forced);
  Fun.protect
    ~finally:(fun () -> Symtab.force_hook := saved)
    (fun () ->
      (* the poisoned unit fails typed in both sessions... *)
      List.iter
        (fun id ->
          match Server.exec sv id (Server.Break_function "bfun") with
          | Error (Server.Failed _) -> ()
          | Ok r ->
              Alcotest.failf "session %d: break into a quarantined unit gave %s" id
                (Server.reply_to_string r)
          | Error r ->
              Alcotest.failf "session %d: wrong refusal %s" id
                (Server.refusal_to_string r))
        [ id1; id2 ];
      (* ... was never re-executed ... *)
      Alcotest.(check bool) "b.c never forced" true
        (not (List.mem "b.c" !forced));
      (* ... both sessions stay healthy and the rest of the table works *)
      List.iter
        (fun id ->
          (match (session_exn sv id).Server.ss_state with
          | Server.Healthy -> ()
          | s -> Alcotest.failf "session %d degraded to %s" id (Server.state_name s));
          ignore (ok "break afun" (Server.exec sv id (Server.Break_function "afun"))))
        [ id1; id2 ])

(* --- typed failure, typed refusal -------------------------------------------- *)

let test_typed_isolation () =
  let sv = Server.create () in
  let image = Host.build_image ~arch:Arch.Sparc fib_sources in
  let id, _p = open_on sv image ~name:"s" in
  (* a bad command fails typed; the session shrugs it off *)
  (match Server.exec sv id (Server.Break_function "nosuchfn") with
  | Error (Server.Failed _) -> ()
  | r ->
      Alcotest.failf "bad break: %s"
        (match r with
        | Ok r -> Server.reply_to_string r
        | Error r -> Server.refusal_to_string r));
  (match (session_exn sv id).Server.ss_state with
  | Server.Healthy -> ()
  | s -> Alcotest.failf "session degraded to %s" (Server.state_name s));
  ignore (ok "break fib" (Server.exec sv id (Server.Break_function "fib")));
  (* unknown sessions are typed, not exceptional *)
  (match Server.exec sv 999 Server.Where with
  | Error (Server.No_such_session 999) -> ()
  | _ -> Alcotest.fail "expected No_such_session");
  (* kill closes; commands after the close are typed *)
  ignore (ok "kill" (Server.exec sv id Server.Kill));
  match Server.exec sv id Server.Where with
  | Error (Server.Session_closed _) -> ()
  | _ -> Alcotest.fail "expected Session_closed"

(* --- backpressure ------------------------------------------------------------- *)

let test_backpressure () =
  (* admission control *)
  let sv =
    Server.create
      ~limits:{ Server.default_limits with Server.li_max_sessions = 1 }
      ()
  in
  let image = Host.build_image ~arch:Arch.Mips fib_sources in
  let _id, _p = open_on sv image ~name:"only" in
  let p2 = Host.launch_image image in
  (match
     Server.open_session sv ~name:"too-many" ~loader_ps:p2.Host.hp_loader_ps
       (Host.open_channel p2)
   with
  | Error (Server.Overloaded _) -> ()
  | Ok _ -> Alcotest.fail "admission over the cap succeeded"
  | Error r -> Alcotest.failf "wrong refusal: %s" (Server.refusal_to_string r));
  (* per-tick RPC budget: room for the setup, then drive reads into the cap *)
  let sv =
    Server.create
      ~limits:{ Server.default_limits with Server.li_max_rpcs_per_tick = 40 }
      ()
  in
  let id, _p = open_on sv image ~name:"budgeted" in
  ignore (ok "break" (Server.exec sv id (Server.Break_function "fib")));
  ignore (ok "continue" (Server.exec sv id Server.Continue));
  Server.tick sv;
  let rec drive n =
    if n > 50 then Alcotest.fail "budget never engaged"
    else
      match Server.exec sv id (Server.Read_int "n") with
      | Ok (Server.R_int 10) -> drive (n + 1)
      | Error (Server.Overloaded _) -> ()
      | r ->
          Alcotest.failf "unexpected: %s"
            (match r with
            | Ok r -> Server.reply_to_string r
            | Error r -> Server.refusal_to_string r)
  in
  drive 0;
  (* the next tick refills the budget; the session was never degraded *)
  Server.tick sv;
  (match ok "read after tick" (Server.exec sv id (Server.Read_int "n")) with
  | Server.R_int 10 -> ()
  | r -> Alcotest.failf "bad read: %s" (Server.reply_to_string r));
  match (session_exn sv id).Server.ss_state with
  | Server.Healthy -> ()
  | s -> Alcotest.failf "overload degraded the session to %s" (Server.state_name s)

(* --- liveness ----------------------------------------------------------------- *)

(** A peer that stops answering is walked through the state machine by
    heartbeats: Healthy, Unresponsive with backoff, Down when the miss
    budget is gone — all recorded in the event log. *)
let test_heartbeat_escalation () =
  let sv =
    Server.create
      ~limits:
        {
          Server.default_limits with
          Server.li_hb_every = 1;
          li_hb_max_misses = 3;
          li_hb_deadline = 2;
        }
      ()
  in
  let image = Host.build_image ~arch:Arch.M68k fib_sources in
  let id, _p = open_on sv image ~name:"quiet" in
  let s = session_exn sv id in
  (* the peer goes silent: the link is up but nothing moves *)
  Chan.set_pump (Transport.endpoint (Ldb.transport s.Server.ss_tg)) (fun () -> ());
  let saw_unresponsive = ref false in
  let rec drive n =
    if n > 60 then Alcotest.fail "never escalated to Down"
    else begin
      Server.tick sv;
      match s.Server.ss_state with
      | Server.Unresponsive _ ->
          saw_unresponsive := true;
          drive (n + 1)
      | Server.Down _ -> ()
      | _ -> drive (n + 1)
    end
  in
  drive 0;
  Alcotest.(check bool) "passed through Unresponsive" true !saw_unresponsive;
  (match Server.exec sv id Server.Where with
  | Error (Server.Session_down _) -> ()
  | _ -> Alcotest.fail "expected Session_down");
  let log = String.concat "\n" (List.map Server.log_entry_to_string (Server.events sv)) in
  let has_sub sub =
    let n = String.length sub and h = String.length log in
    let rec go i = i + n <= h && (String.sub log i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "log records the suspicion" true (has_sub "unresponsive");
  Alcotest.(check bool) "log records the down" true (has_sub "down:")

(** A cut link takes only its own session down, immediately and typed;
    the neighbour session answers exactly as before. *)
let test_disconnect_isolated () =
  let sv = Server.create () in
  let image = Host.build_image ~arch:Arch.Vax fib_sources in
  let ida, _pa = open_on sv image ~name:"victim" in
  let idb, _pb = open_on sv image ~name:"bystander" in
  let script id =
    (* sequential lets: a list literal would evaluate right to left *)
    let b = Server.reply_to_string (ok "break" (Server.exec sv id (Server.Break_function "fib"))) in
    let c = Server.reply_to_string (ok "continue" (Server.exec sv id Server.Continue)) in
    let r = Server.reply_to_string (ok "read" (Server.exec sv id (Server.Read_int "n"))) in
    [ b; c; r ]
  in
  let expected = script ida in
  (* the victim's link dies *)
  Chan.disconnect
    (Transport.endpoint (Ldb.transport (session_exn sv ida).Server.ss_tg));
  (match Server.exec sv ida Server.Backtrace with
  | Error (Server.Session_down _) -> ()
  | r ->
      Alcotest.failf "expected Session_down, got %s"
        (match r with
        | Ok r -> Server.reply_to_string r
        | Error r -> Server.refusal_to_string r));
  (match (session_exn sv ida).Server.ss_state with
  | Server.Down _ -> ()
  | s -> Alcotest.failf "victim in %s, not down" (Server.state_name s));
  (* the bystander's answers are byte-identical to the victim's clean run *)
  check Alcotest.(list string) "bystander unaffected" expected (script idb)

(* --- post-mortem sessions ------------------------------------------------------ *)

let segv_sources =
  [
    ( "segv.c",
      {|
int boom(int k)
{
    static int a[4];
    a[0] = 7;
    a[k] = 1;
    return a[0];
}
int main(void)
{
    int n;
    n = 4000000;
    printf("before\n");
    boom(n);
    printf("after\n");
    return 0;
}
|}
    );
  ]

(** The bounded event log never truncates silently: once the cap drops
    older entries, the log opens with a marker entry saying how many are
    gone, and the newest entries are all still there. *)
let test_log_truncation_marker () =
  let sv =
    Server.create ~limits:{ Server.default_limits with Server.li_max_log = 32 } ()
  in
  check Alcotest.int "nothing dropped yet" 0 (Server.events_dropped sv);
  for i = 1 to 100 do
    Server.log sv 1 "event %d" i
  done;
  let dropped = Server.events_dropped sv in
  check Alcotest.bool "the cap dropped something" true (dropped > 0);
  (match Server.events sv with
  | marker :: rest ->
      check Alcotest.int "the marker is the server's own entry" 0
        marker.Server.ev_session;
      let expect =
        Printf.sprintf "event log truncated: %d older entries dropped" dropped
      in
      check Alcotest.string "the marker counts the dropped entries" expect
        marker.Server.ev_line;
      (match List.rev rest with
      | newest :: _ ->
          check Alcotest.string "the newest entry survived" "event 100"
            newest.Server.ev_line
      | [] -> Alcotest.fail "no entries survived the cap");
      check Alcotest.bool "the kept entries fit the cap" true (List.length rest <= 32)
  | [] -> Alcotest.fail "empty event log");
  (* accounting: dropped + kept = everything ever logged *)
  check Alcotest.int "no entry is unaccounted for" 100
    (dropped + (List.length (Server.events sv) - 1))

(** A crashed session's core feeds a post-mortem session in the same
    server, sharing the image; commands are queries only. *)
let test_core_session () =
  let sv = Server.create () in
  let image = Host.build_image ~arch:Arch.Mips segv_sources in
  let id, p = open_on sv image ~name:"crasher" in
  (match ok "run to fault" (Server.exec sv id Server.Continue) with
  | Server.R_state (Ldb.Stopped { signal = Signal.SIGSEGV; _ }) -> ()
  | r -> Alcotest.failf "expected a SIGSEGV stop, got %s" (Server.reply_to_string r));
  let core =
    match ok "core" (Server.exec sv id Server.Fetch_core) with
    | Server.R_core co -> co
    | r -> Alcotest.failf "expected a core, got %s" (Server.reply_to_string r)
  in
  let pm =
    ok "open core session"
      (Server.open_core_session sv ~name:"post-mortem"
         ~loader_ps:p.Host.hp_loader_ps (core, []))
  in
  check Alcotest.int "image shared with the live session" 1 (Server.cached_images sv);
  (match ok "post-mortem where" (Server.exec sv pm Server.Where) with
  | Server.R_text t ->
      Alcotest.(check bool) "where names the fault" true
        (String.length t > 0 && String.sub t 0 7 = "SIGSEGV")
  | r -> Alcotest.failf "bad where: %s" (Server.reply_to_string r));
  ignore (ok "post-mortem backtrace" (Server.exec sv pm Server.Backtrace));
  (* commands are refused typed on the dead process *)
  (match Server.exec sv pm Server.Continue with
  | Error (Server.Failed _) -> ()
  | r ->
      Alcotest.failf "continue on a core gave %s"
        (match r with
        | Ok r -> Server.reply_to_string r
        | Error r -> Server.refusal_to_string r));
  (* a core over the resource cap is refused typed, not shipped *)
  let sv2 =
    Server.create
      ~limits:{ Server.default_limits with Server.li_max_core_bytes = 1024 }
      ()
  in
  let id2, _p2 = open_on sv2 image ~name:"capped" in
  ignore (ok "run to fault" (Server.exec sv2 id2 Server.Continue));
  match Server.exec sv2 id2 Server.Fetch_core with
  | Error (Server.Overloaded _) -> ()
  | r ->
      Alcotest.failf "over-cap core gave %s"
        (match r with
        | Ok r -> Server.reply_to_string r
        | Error r -> Server.refusal_to_string r)

(* --- the chaos soak ------------------------------------------------------------ *)

(** What the chaos schedule does to a session: nothing, cut the link
    before round [r], stall the link before round [r], or have the client
    kill it at round [r]. *)
type fate = Spared | Cut of int | Stalled of int | Killed of int

let fate_name = function
  | Spared -> "spared"
  | Cut r -> Printf.sprintf "cut@%d" r
  | Stalled r -> Printf.sprintf "stalled@%d" r
  | Killed r -> Printf.sprintf "killed@%d" r

let soak_script =
  [|
    Server.Break_function "fib";
    Server.Continue;
    Server.Read_int "n";
    Server.Print "n";
    Server.Backtrace;
    Server.Continue;
  |]

let show_result = function
  | Ok r -> "ok: " ^ Server.reply_to_string r
  | Error r -> "refused: " ^ Server.refusal_to_string r

(** The reference answers: the same script through a server with exactly
    one session on a clean link. *)
let soak_baseline ~arch : string list =
  let sv = Server.create () in
  let image = Host.build_image ~arch fib_sources in
  let id, _p = open_on sv image ~name:"baseline" in
  Array.to_list (Array.map (fun cmd -> show_result (Server.exec sv id cmd)) soak_script)

let soak_sessions () =
  match Sys.getenv_opt "LDB_SOAK_SESSIONS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 64)
  | None -> 64

let soak_log_path () =
  let dir = Option.value ~default:"." (Sys.getenv_opt "LDB_SOAK_LOG_DIR") in
  Filename.concat dir "server-soak-events.log"

let test_chaos_soak () =
  let n = soak_sessions () in
  let rate = 0.05 in
  let rng = Random.State.make [| 0xC4A05 |] in
  let arches = Array.of_list Arch.all in
  let images = Array.map (fun arch -> Host.build_image ~arch fib_sources) arches in
  let baselines = Array.map (fun arch -> Array.of_list (soak_baseline ~arch)) arches in
  let sv =
    Server.create
      ~limits:
        {
          Server.default_limits with
          Server.li_max_sessions = n;
          (* tolerate a probe eating a fault without spuriously downing a
             healthy session: 4 consecutive misses at 5% is noise-proof *)
          li_hb_max_misses = 4;
          li_hb_deadline = 8;
        }
      ()
  in
  let rounds = Array.length soak_script in
  (* one entry per session: identity, chaos schedule, observations *)
  let sessions =
    Array.init n (fun i ->
        let arch_ix = i mod Array.length arches in
        let p = Host.launch_image images.(arch_ix) in
        let prof =
          Faultchan.profile ~rate
            ~kinds:Faultchan.[ Drop; Corrupt; Truncate; Duplicate; Stall ]
            ~stall_ticks:4 ()
        in
        let chan, fc = Host.open_faulty_channel ~armed:false p ~seed:(7000 + (17 * i)) prof in
        let id =
          ok
            (Printf.sprintf "open soak session %d" i)
            (Server.open_session sv
               ~name:(Printf.sprintf "soak-%03d" i)
               ~loader_ps:p.Host.hp_loader_ps chan)
        in
        Faultchan.set_armed fc true;
        let fate =
          let roll = Random.State.float rng 1.0 in
          let round = 1 + Random.State.int rng (rounds - 1) in
          if roll < 0.12 then Cut round
          else if roll < 0.24 then Stalled round
          else if roll < 0.36 then Killed round
          else Spared
        in
        (id, arch_ix, fate, Array.make rounds ""))
  in
  (* drive all sessions round-robin, sabotaging on schedule; a tick after
     every round runs budget resets and heartbeats *)
  for round = 0 to rounds - 1 do
    Array.iter
      (fun (id, _arch_ix, fate, results) ->
        let tg = (session_exn sv id).Server.ss_tg in
        (match fate with
        | Cut r when r = round ->
            Chan.disconnect (Transport.endpoint (Ldb.transport tg))
        | Stalled r when r = round ->
            Chan.set_pump (Transport.endpoint (Ldb.transport tg)) (fun () -> ())
        | _ -> ());
        let cmd =
          match fate with Killed r when r = round -> Server.Kill | _ -> soak_script.(round)
        in
        results.(round) <- show_result (Server.exec sv id cmd))
      sessions;
    Server.tick sv
  done;
  (* let the heartbeat machinery finish escalating the stalled victims *)
  for _ = 1 to 80 do
    Server.tick sv
  done;
  (* write the flight recorder for CI *)
  let oc = open_out (soak_log_path ()) in
  List.iter
    (fun e -> output_string oc (Server.log_entry_to_string e ^ "\n"))
    (Server.events sv);
  output_string oc (Server.render_sessions sv);
  close_out oc;
  (* the verdict, session by session *)
  Array.iter
    (fun (id, arch_ix, fate, results) ->
      let who = Printf.sprintf "session %d (%s, %s)" id (Arch.name arches.(arch_ix)) (fate_name fate) in
      let baseline = baselines.(arch_ix) in
      let state = (session_exn sv id).Server.ss_state in
      let check_prefix upto =
        for r = 0 to upto - 1 do
          check Alcotest.string
            (Printf.sprintf "%s round %d matches the clean run" who r)
            baseline.(r) results.(r)
        done
      in
      match fate with
      | Spared ->
          (* zero contamination: byte-identical to the fault-free run *)
          check_prefix rounds;
          (match state with
          | Server.Healthy | Server.Unresponsive _ -> ()
          | s ->
              Alcotest.failf "%s ended %s — a healthy session went down" who
                (Server.state_name s))
      | Killed r ->
          check_prefix r;
          check Alcotest.string (who ^ " kill acknowledged") "ok: ok" results.(r);
          (match state with
          | Server.Closed -> ()
          | s -> Alcotest.failf "%s ended %s, not closed" who (Server.state_name s))
      | Cut r | Stalled r -> (
          check_prefix r;
          match state with
          | Server.Down _ -> ()
          | s -> Alcotest.failf "%s ended %s, not down" who (Server.state_name s)))
    sessions;
  (* every down session was a victim; the count is exact *)
  let downs =
    List.length
      (List.filter
         (fun s -> match s.Server.ss_state with Server.Down _ -> true | _ -> false)
         (Server.sessions sv))
  in
  let victims =
    Array.fold_left
      (fun acc (_, _, fate, _) ->
        match fate with Cut _ | Stalled _ -> acc + 1 | _ -> acc)
      0 sessions
  in
  check Alcotest.int "every down session is a victim" victims downs;
  (* the server survived: still admitting and serving *)
  let image = images.(0) in
  let id, _p = open_on sv image ~name:"after-the-storm" in
  ignore (ok "post-storm break" (Server.exec sv id (Server.Break_function "fib")));
  match ok "post-storm continue" (Server.exec sv id Server.Continue) with
  | Server.R_state (Ldb.Stopped _) -> ()
  | r -> Alcotest.failf "post-storm stop: %s" (Server.reply_to_string r)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "server"
    [
      ( "cache",
        [ case "image shared across sessions" test_image_cache_shared;
          case "quarantine shared, typed, no re-force" test_quarantine_shared ] );
      ( "isolation",
        [ case "typed failures leave the session healthy" test_typed_isolation;
          case "disconnect hits only its own session" test_disconnect_isolated ] );
      ("backpressure", [ case "admission and RPC budgets refuse typed" test_backpressure ]);
      ("liveness", [ case "heartbeats escalate to down" test_heartbeat_escalation ]);
      ("flight recorder", [ case "log truncation leaves a marker" test_log_truncation_marker ]);
      ("post-mortem", [ case "core-backed session shares the image" test_core_session ]);
      ("soak", [ case "chaos soak: 64 sessions, 5% faults" test_chaos_soak ]);
    ]
