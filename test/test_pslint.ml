(** Tests for pslint, the static stack-effect and type verifier.

    Four groups:
      - "clean": the shared prelude and the symbol tables psemit produces
        for real programs on every target must lint with zero findings
        (no false positives on shipped code);
      - "corpus": seeded defects — including mutations of real emitted
        tables — must each be flagged (no false negatives);
      - "coverage": every operator the interpreter registers is known to
        the signature table;
      - "soundness" (qcheck): a random program that pslint passes never
        raises typecheck or stackunderflow when executed. *)

module L = Ldb_pscheck.Lattice
module C = Ldb_pscheck.Pscheck
module I = Ldb_pscript.Interp
module V = Ldb_pscript.Value
module Ps = Ldb_pscript.Ps

let check = Alcotest.check

let lint ?(deep = true) src =
  let env = C.debugger_env () in
  C.check_program ~env ~deep ~name:"%test" src

let lint_strings fs = List.map L.finding_to_string fs

let assert_clean name src =
  match lint src with
  | [] -> ()
  | fs -> Alcotest.failf "%s: expected clean, got:\n%s" name (String.concat "\n" (lint_strings fs))

let assert_flags name ?(kind : L.kind option) src =
  match lint src with
  | [] -> Alcotest.failf "%s: expected a finding, got none" name
  | fs -> (
      match kind with
      | None -> ()
      | Some k ->
          if not (List.exists (fun (f : L.finding) -> f.L.kind = k) fs) then
            Alcotest.failf "%s: expected a %s finding, got:\n%s" name (L.kind_name k)
              (String.concat "\n" (lint_strings fs)))

(* --- clean: prelude and emitted symbol tables ------------------------------ *)

let test_prelude_clean () =
  let env = C.base_env () in
  C.declare_debugger env;
  match C.check_program ~env ~deep:true ~name:"prelude" Ldb_pscript.Prelude.source with
  | [] -> ()
  | fs -> Alcotest.failf "prelude not clean:\n%s" (String.concat "\n" (lint_strings fs))

let structs_c =
  {|
struct point { int x; int y; };
static struct point origin;
static double factors[4];
char *tag(void) { return "pt"; }
double stretch(double f) { return f * 2.0 + 0.25; }
int main(void)
{
    struct point p;
    p.x = 1; p.y = 2;
    origin = p;
    factors[0] = stretch(1.5);
    printf("%d\n", origin.x + origin.y);
    return 0;
}
|}

(** Compile real programs for every target (with the emit-time gate off so
    we exercise the checker here, on its own) and lint every emitted table. *)
let emitted_tables () =
  let saved = !Ldb_cc.Psemit.lint_enabled in
  Ldb_cc.Psemit.lint_enabled := false;
  Fun.protect
    ~finally:(fun () -> Ldb_cc.Psemit.lint_enabled := saved)
    (fun () ->
      List.concat_map
        (fun arch ->
          List.filter_map
            (fun (file, src) ->
              let o = Ldb_cc.Compile.compile ~defer:false ~arch ~file src in
              match o.Ldb_cc.Asm.o_ps with
              | None -> None
              | Some ps ->
                  Some
                    ( Printf.sprintf "%s@%s" file (Ldb_machine.Arch.name arch),
                      ps.Ldb_cc.Asm.pp_defs ))
            [ ("fib.c", Testkit.fib_c); ("structs.c", structs_c) ])
        Ldb_machine.Arch.all)

let test_emitted_clean () =
  let tables = emitted_tables () in
  check Alcotest.int "four targets, two programs" 8 (List.length tables);
  List.iter
    (fun (name, body) ->
      let env = C.debugger_env () in
      match C.check_program ~env ~deep:true ~name body with
      | [] -> ()
      | fs ->
          Alcotest.failf "%s not clean:\n%s" name (String.concat "\n" (lint_strings fs)))
    tables

(* --- corpus: seeded defects must all be flagged ---------------------------- *)

let corpus : (string * L.kind * string) list =
  [
    ("underflow add", L.Underflow, "1 add");
    ("underflow in proc", L.Underflow, "/f {exch pop} def 1 f");
    ("type clash add", L.Type_clash, "(s) 1 add");
    ("type clash if-cond", L.Type_clash, "1 {2} if");
    ("type clash store-loc", L.Type_clash, "1.5 2.5 FloatStore");
    ("unknown op", L.Unknown_op, "1 2 addd");
    ("unknown op in proc", L.Unknown_op, "/g {dupp 1 add} def 2 g");
    ("unmatched ]", L.Unmatched_mark, "1 2 ]");
    ("unmatched >>", L.Unmatched_mark, "1 2 >>");
    ("odd dict pairs", L.Dict_access, "<< /a 1 /b >>");
    ("counttomark no mark", L.Unmatched_mark, "1 2 counttomark");
    ("branch arity", L.Branch_arity, "true {1} {} ifelse pop");
    ("string put", L.Dict_access, "(abc) 0 65 put");
    ("negative array", L.Range, "-1 array");
    ("bad Absolute space", L.Range, "0 (rr) Absolute");
    ("ImmediateCell size", L.Range, "0 ImmediateCell");
    ("syntax unterminated", L.Syntax, "{1 2 add");
    (* unary arithmetic must preserve the operand type: [abs] of a real
       is a real, and the interpreter's [not] traps on it *)
    ("not of real abs", L.Type_clash, "2.5 abs not");
    ("not of real neg", L.Type_clash, "2.5 dup add neg not");
  ]

let test_corpus () =
  List.iter (fun (name, kind, src) -> assert_flags name ~kind src) corpus;
  (* the issue asks for >= 10 distinct defects *)
  if List.length corpus < 10 then Alcotest.fail "corpus too small"

(** Mutations of a real emitted table: pslint must catch compiler-level
    breakage, not only toy programs. *)
let replace_once ~what ~by s =
  let n = String.length s and m = String.length what in
  let rec find i = if i + m > n then None else if String.sub s i m = what then Some i else find (i + 1) in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m))

let test_mutated_table () =
  let name, body = List.hd (emitted_tables ()) in
  (* 1. misspell an operator the table relies on *)
  (match replace_once ~what:"LazyData" ~by:"LazyDataa" body with
  | None -> Alcotest.failf "%s: no LazyData to mutate" name
  | Some mutated -> assert_flags (name ^ " misspelled op") ~kind:L.Unknown_op mutated);
  (* 2. drop an operand: "8 dict" -> "dict" somewhere in the table *)
  match replace_once ~what:" dict" ~by:" pop dict" body with
  | None -> Alcotest.failf "%s: no dict to mutate" name
  | Some mutated -> assert_flags (name ^ " dropped operand") mutated

let test_mutated_prelude () =
  match replace_once ~what:"Put" ~by:"Putt" Ldb_pscript.Prelude.source with
  | None -> Alcotest.fail "prelude has no Put"
  | Some mutated ->
      let env = C.base_env () in
      C.declare_debugger env;
      (match C.check_program ~env ~deep:true ~name:"prelude" mutated with
      | [] -> Alcotest.fail "mutated prelude not flagged"
      | fs ->
          if not (List.exists (fun (f : L.finding) -> f.L.kind = L.Unknown_op) fs) then
            Alcotest.failf "expected unknown-op, got:\n%s" (String.concat "\n" (lint_strings fs)))

let test_positions () =
  match lint "1 1 add\n(x) 3 mul" with
  | [ f ] ->
      check Alcotest.int "line" 2 f.L.line;
      check Alcotest.int "col" 7 f.L.col;
      check Alcotest.string "kind" "type-clash" (L.kind_name f.L.kind)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_clean_idioms () =
  (* precision checks: idioms shipped code uses must not be flagged *)
  assert_clean "roll" "1 2 3 3 -1 roll pop pop pop";
  assert_clean "roll n=0" "1 0 -5 roll pop";
  assert_clean "frame loc" "FrameMem {30 FrameLoc} exec FetchI32 pop";
  assert_clean "balanced ifelse" "true {1} {2} ifelse pop";
  assert_clean "dict literal" "<< /a 1 /b (x) >> /a get pop";
  assert_clean "begin/def/end" "1 dict begin /a 2 def a 1 add pop end";
  assert_clean "mark/clear" "[ 1 2 3 ] aload";
  assert_clean "loop exit" "0 { 1 add dup 10 gt { exit } if } loop pop";
  assert_clean "stopped" "{ (oops) stop } stopped { pop } if";
  assert_clean "abs of int stays int" "1 abs not pop";
  assert_clean "neg of real compares" "2.5 neg 0.5 gt not pop"

(* --- coverage: the signature table is exhaustive --------------------------- *)

let test_coverage () =
  let t = Ps.create () in
  let missing = List.filter (fun name -> not (C.covers name)) (I.registered_ops t) in
  if missing <> [] then
    Alcotest.failf "operators unknown to pslint: %s" (String.concat " " missing)

(* --- soundness (qcheck) ----------------------------------------------------- *)

(** Generator of small random programs over a mix of well- and ill-typed
    building blocks.  The property is one-sided: whenever pslint reports
    nothing, execution must not raise typecheck or stackunderflow.  (The
    generator deliberately includes blocks that push strings under
    arithmetic so that some samples are rejected — those are skipped.) *)
let gen_program : string QCheck.arbitrary =
  let open QCheck.Gen in
  let block =
    oneofl
      [
        (* no bare cvi/cvr: their success on strings depends on the string's
           contents, which no static check can decide *)
        "1"; "2.5"; "(s)"; "true"; "dup"; "pop"; "exch"; "1 add"; "2 mul";
        "neg"; "1 cvi"; "2 cvr"; "dup add"; "1 2 3"; "3 1 roll"; "2 copy";
        "1 index"; "dup 0 gt {1 add} {1 sub} ifelse"; "3 {dup pop} repeat";
        "count"; "clear 0"; "[ 1 2 ] length"; "<< /k 1 >> /k get";
        "not"; "abs"; "1 exch"; "mark counttomark cleartomark 0";
      ]
  in
  let g =
    list_size (int_range 1 8) block >|= fun blocks -> String.concat " " blocks
  in
  QCheck.make ~print:(fun s -> s) g

let prop_sound =
  QCheck.Test.make ~name:"pslint-clean programs do not trap" ~count:500 gen_program
    (fun src ->
      let env = C.base_env () in
      match C.check_program ~env ~deep:true ~name:"%gen" src with
      | _ :: _ -> true (* rejected by pslint: no claim about execution *)
      | [] -> (
          let t = Ps.create () in
          match I.run_string t src with
          | () -> true
          | exception V.Error (("typecheck" | "stackunderflow"), detail) ->
              QCheck.Test.fail_reportf "pslint passed %S but execution trapped: %s" src detail
          | exception V.Error _ -> true (* e.g. rangecheck on data values: out of scope *)))

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "pslint"
    [
      ( "clean",
        [ case "prelude" test_prelude_clean; case "emitted tables" test_emitted_clean;
          case "idioms" test_clean_idioms ] );
      ( "corpus",
        [ case "seeded defects" test_corpus; case "mutated table" test_mutated_table;
          case "mutated prelude" test_mutated_prelude; case "positions" test_positions ] );
      ( "coverage", [ case "signature table" test_coverage ] );
      ( "soundness", [ QCheck_alcotest.to_alcotest prop_sound ] );
    ]
