(** Tests for the Sec. 7.1 extensions: the nub's single-step protocol
    extension, breakpoints over arbitrary instructions, source-level
    stepping, graceful degradation when the extension is absent, and the
    event-driven client interface with conditional breakpoints. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Client = Ldb_ldb.Client
module Frame = Ldb_ldb.Frame
module Breakpoint = Ldb_ldb.Breakpoint

let check = Alcotest.check

let prog =
  {|
int triple(int x) { return 3 * x; }
int main(void)
{
    int i;
    int acc;
    acc = 0;
    for (i = 1; i <= 6; i++)
        acc = acc + triple(i);
    printf("%d\n", acc);
    return 0;
}
|}

let session ?can_step arch =
  let d = Ldb.create () in
  let p =
    let img, loader_ps = Ldb_link.Driver.build ~arch [ ("t.c", prog) ] in
    let proc = Ldb_link.Link.load img in
    let nub = Ldb_nub.Nub.create ?can_step proc in
    Ldb_nub.Nub.start ~paused:true nub;
    { Host.hp_proc = proc; hp_nub = nub; hp_image = img; hp_loader_ps = loader_ps }
  in
  let tg = Ldb.connect d ~name:"step" ~loader_ps:p.Host.hp_loader_ps (Host.open_channel p) in
  (d, tg, p)

(* --- instruction stepping ----------------------------------------------- *)

let test_step_instruction_all_archs () =
  List.iter
    (fun arch ->
      let d, tg, _ = session arch in
      ignore (Ldb.break_function d tg "main");
      ignore (Ldb.continue_ d tg);
      let pc0 = (Ldb.top_frame d tg).Frame.fr_pc in
      (* leaving the breakpoint takes the no-op skip; drive a few steps *)
      (match tg.Ldb.tg_state with
      | Ldb.Stopped { ctx_addr; _ } ->
          Ldb_amemory.Amemory.store_i32 tg.Ldb.tg_wire
            (Ldb_amemory.Amemory.absolute 'd' (ctx_addr + tg.Ldb.tg_tdesc.Target.ctx_pc_off))
            (Int32.of_int (pc0 + tg.Ldb.tg_tdesc.Target.nop_advance))
      | _ -> Alcotest.fail "not stopped");
      (match Testkit.ok (Ldb.step_instruction d tg) with
      | Ldb.Stopped { signal = SIGTRAP; code = 1; _ } -> ()
      | _ -> Alcotest.fail "step did not stop with a step event");
      let pc1 = (Ldb.top_frame d tg).Frame.fr_pc in
      Alcotest.(check bool) (Arch.name arch ^ " pc advanced") true (pc1 <> pc0))
    Arch.all

let test_step_unsupported () =
  let d, tg, _ = session ~can_step:false Vax in
  Alcotest.(check bool) "capability reported" false tg.Ldb.tg_can_step;
  ignore (Ldb.break_function d tg "main");
  ignore (Ldb.continue_ d tg);
  (match Testkit.ok (Ldb.step_instruction d tg) with
  | exception Ldb.Error _ -> ()
  | _ -> Alcotest.fail "step accepted without nub support");
  (* but the no-op breakpoint scheme keeps working *)
  match Testkit.ok (Ldb.continue_ d tg) with
  | Ldb.Exited 0 -> ()
  | _ -> Alcotest.fail "no-op scheme broken without stepping"

(* --- general breakpoints -------------------------------------------------- *)

let test_general_breakpoint () =
  List.iter
    (fun arch ->
      let d, tg, p = session arch in
      (* plant over the *second* instruction of triple: not a no-op *)
      let entry = Ldb.break_function d tg "triple" in
      Ldb.clear_breakpoint tg ~addr:entry;
      let nop_len = String.length tg.Ldb.tg_tdesc.Target.nop in
      (* skip consecutive stopping-point no-ops to real code *)
      let rec first_real a =
        if Breakpoint.fetch_bytes tg.Ldb.tg_wire a nop_len = tg.Ldb.tg_tdesc.Target.nop then
          first_real (a + nop_len)
        else a
      in
      let addr = first_real entry in
      Ldb.break_address d tg ~addr;
      (* six calls to triple: the general breakpoint must hit six times and
         execution must stay correct (restore / step / replant) *)
      let hits = ref 0 in
      let rec drive () =
        match Testkit.ok (Ldb.continue_ d tg) with
        | Ldb.Stopped { signal = SIGTRAP; _ } ->
            incr hits;
            drive ()
        | Ldb.Exited 0 -> ()
        | _ -> Alcotest.fail "unexpected stop"
      in
      drive ();
      check Alcotest.int (Arch.name arch ^ " hits") 6 !hits;
      check Alcotest.string (Arch.name arch ^ " output intact") "63\n" (Host.output p))
    Arch.all

let test_general_needs_stepping () =
  let d, tg, _ = session ~can_step:false M68k in
  match Ldb.break_address d tg ~addr:Ram.Layout.code_base with
  | exception Ldb.Error _ -> ()
  | _ -> Alcotest.fail "general breakpoint planted without step support"

(* --- source-level stepping -------------------------------------------------- *)

let test_step_source () =
  let d, tg, _ = session Mips in
  ignore (Ldb.break_function d tg "main");
  ignore (Ldb.continue_ d tg);
  (* stepping from main's entry: each step lands on a stopping point *)
  let lines = ref [] in
  for _ = 1 to 4 do
    match Testkit.ok (Ldb.step_source d tg) with
    | Ldb.Stopped _ -> (
        let fr = Ldb.top_frame d tg in
        match Ldb.stop_of_frame d tg fr with
        | Some s -> lines := s.Ldb_ldb.Symtab.stop_line :: !lines
        | None -> Alcotest.fail "step landed off a stopping point")
    | _ -> Alcotest.fail "step_source did not stop"
  done;
  (* main: acc=0 (line 7), i=1 (line 8), i<=6 (line 8), then into the body *)
  Alcotest.(check bool) "visited several distinct points" true
    (List.length (List.sort_uniq compare !lines) >= 2)

let test_step_source_enters_callee () =
  let d, tg, _ = session Sparc in
  ignore (Ldb.break_line d tg ~line:9);  (* acc = acc + triple(i) *)
  ignore (Ldb.continue_ d tg);
  (* stepping from the call statement eventually lands in triple *)
  let rec go n =
    if n = 0 then Alcotest.fail "never reached triple"
    else
      match Testkit.ok (Ldb.step_source d tg) with
      | Ldb.Stopped _ ->
          let fr = Ldb.top_frame d tg in
          if Ldb.frame_function d tg fr = "triple" then ()
          else go (n - 1)
      | _ -> Alcotest.fail "lost the target"
  in
  go 6

(* --- event-driven client / conditional breakpoints ---------------------------- *)

let test_conditional_breakpoint () =
  let d, tg, _p = session Vax in
  let client = Client.create d tg in
  let addr = Ldb.break_function d tg "triple" in
  (* only stop when x > 4: should fire exactly twice (x=5, x=6) *)
  Client.break_when client ~addr (fun fr -> Ldb.read_int_var d tg fr "x" > 4);
  let stops = ref [] in
  let ev =
    Client.run client ~handler:(fun ev ->
        match ev with
        | Client.Ev_breakpoint { frame; _ } ->
            stops := Ldb.read_int_var d tg frame "x" :: !stops;
            Client.Resume
        | Client.Ev_signal _ -> Client.Resume
        | Client.Ev_exit _ -> Client.Pause)
  in
  (match ev with Client.Ev_exit 0 -> () | _ -> Alcotest.fail "did not run to exit");
  check Alcotest.(list int) "fired for x=5,6 only" [ 5; 6 ] (List.rev !stops)

let test_event_classification () =
  let d, tg, _ = session M68k in
  let client = Client.create d tg in
  ignore (Ldb.break_function d tg "main");
  let ev = Client.run client ~handler:(fun _ -> Client.Pause) in
  match ev with
  | Client.Ev_breakpoint { frame; _ } ->
      check Alcotest.string "in main" "main" (Ldb.frame_function d tg frame)
  | _ -> Alcotest.fail "expected a breakpoint event"

(* --- watchpoints --------------------------------------------------------- *)

let watch_prog =
  {|
int counter = 0;
int spin(int n) { int i; int s; s = 0; for (i = 0; i < n; i++) s += i; return s; }
int main(void)
{
    int a;
    a = spin(5);
    counter = a + 1;    /* the watched modification */
    a = spin(3);
    printf("%d %d\n", counter, a);
    return 0;
}
|}

let test_watchpoint () =
  let d = Ldb.create () in
  let p, tg = Host.spawn d ~arch:Sparc ~name:"w" [ ("w.c", watch_prog) ] in
  ignore p;
  let client = Client.create d tg in
  (* address of the global through the symbol machinery *)
  let main_bp = Ldb.break_function d tg "main" in
  ignore (Ldb.continue_ d tg);
  (* the watch single-steps from here: restore the no-op first *)
  Ldb.clear_breakpoint tg ~addr:main_bp;
  let fr = Ldb.top_frame d tg in
  let addr =
    match Ldb.resolve d tg fr "counter" with
    | Some entry -> (
        match Ldb.location_of d tg fr entry with
        | Ldb_amemory.Amemory.Absolute { offset; _ } -> offset
        | _ -> Alcotest.fail "no address")
    | None -> Alcotest.fail "counter not found"
  in
  (match Client.watch client ~addr () with
  | Client.Ev_signal { frame; _ } | Client.Ev_breakpoint { frame; _ } ->
      (* stopped right after the store: counter already has its new value *)
      Alcotest.(check string) "stopped in main" "main" (Ldb.frame_function d tg frame);
      Alcotest.(check int) "new value visible" 11
        (Int32.to_int
           (Ldb_amemory.Amemory.fetch_i32 tg.Ldb.tg_wire
              (Ldb_amemory.Amemory.absolute 'd' addr)))
  | Client.Ev_exit _ -> Alcotest.fail "exited before the watch fired");
  match Testkit.ok (Ldb.continue_ d tg) with
  | Ldb.Exited 0 -> ()
  | _ -> Alcotest.fail "did not finish after the watch"

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "stepping"
    [
      ( "instruction stepping",
        [ case "steps on all targets" test_step_instruction_all_archs;
          case "unsupported nub degrades gracefully" test_step_unsupported ] );
      ( "general breakpoints",
        [ case "restore/step/replant on all targets" test_general_breakpoint;
          case "requires the extension" test_general_needs_stepping ] );
      ( "source stepping",
        [ case "lands on stopping points" test_step_source;
          case "enters callees" test_step_source_enters_callee ] );
      ( "client events",
        [ case "conditional breakpoints" test_conditional_breakpoint;
          case "classification" test_event_classification;
          case "data watchpoint" test_watchpoint ] );
    ]
