(** Record/replay time travel tests: the trace codec (round-trips,
    checkpoint embedding, salvage on truncation and corruption), the
    reverse-execution differential the feature promises — every
    historical stop reached by rstep/rcontinue must answer backtrace,
    print, and disassembly byte-identically to a fresh forward session
    halted at the same point, validity-aware printing included — the
    run-back-to-last-write query, and the determinism gate CI leans on:
    recording the same seeded session twice yields byte-identical
    traces, and replaying one to the end reproduces the live core. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Replay = Ldb_ldb.Replay
module Frame = Ldb_ldb.Frame
module Disas = Ldb_ldb.Disas
module Trace = Ldb_nub.Trace
module Proto = Ldb_nub.Proto

let check = Alcotest.check

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* a function with a local that is assigned partway through: stepping
   backwards across the assignment must revive the "uninitialized"
   warning exactly where a forward session shows it *)
let work_c =
  {|
int g;
void work(void)
{
    int x;
    g = 1;
    x = 5;
    g = x + 2;
}
int main(void)
{
    work();
    return 0;
}
|}

let work_sources = [ ("work.c", work_c) ]

(* a loop with a repeated breakpoint hit, for rcontinue *)
let loop_c =
  {|
int total;
void bump(int k)
{
    total = total + k;
}
int main(void)
{
    int i;
    for (i = 1; i <= 4; i++)
        bump(i);
    printf("%d\n", total);
    return 0;
}
|}

let loop_sources = [ ("loop.c", loop_c) ]

(* a global written three times, then inspected: rwatch material *)
let writes_c =
  {|
int x;
int y;
void finish(void)
{
    printf("%d\n", x);
}
int main(void)
{
    x = 1;
    x = 2;
    x = 3;
    finish();
    return 0;
}
|}

let writes_sources = [ ("writes.c", writes_c) ]

(** Everything the debugger shows at a stop, concatenated: where,
    backtrace, variable printing (through the validity tables and the
    PostScript printers), and disassembly at the pc.  Two sessions
    halted at "the same point" must produce equal views. *)
let view d tg ~(vars : string list) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b (Ldb.where d tg);
  Buffer.add_char b '\n';
  List.iteri
    (fun i fr ->
      Buffer.add_string b
        (Printf.sprintf "#%d %s pc=%#x base=%#x\n" i (Ldb.frame_function d tg fr)
           fr.Frame.fr_pc fr.Frame.fr_base))
    (Ldb.backtrace d tg);
  let fr = Ldb.top_frame d tg in
  List.iter
    (fun v ->
      let s =
        try Ldb.print_value d tg fr v with Ldb.Error m -> "<error: " ^ m ^ ">"
      in
      Buffer.add_string b (Printf.sprintf "%s = %s\n" v s))
    vars;
  Buffer.add_string b
    (Disas.to_string (Ldb.disassemble d tg ~addr:fr.Frame.fr_pc ~count:4));
  Buffer.contents b

let reach = function
  | Ok tg -> tg
  | Error e -> Alcotest.failf "reverse motion failed: %s" (Replay.error_to_string e)

let expect_stop what = function
  | Ldb.Stopped _ -> ()
  | _ -> Alcotest.failf "%s: expected a stop" what

let open_replay (s : Testkit.session) : Replay.t =
  let image = Ldb.load_image s.Testkit.d ~loader_ps:s.Testkit.proc.Host.hp_loader_ps in
  match
    Replay.of_string s.Testkit.d ~name:"replay" ~image (Ldb.trace_bytes s.Testkit.tg)
  with
  | Ok (rp, []) -> rp
  | Ok (_, w :: _) -> Alcotest.failf "unexpected salvage: %s" (Trace.salvage_to_string w)
  | Error e -> Alcotest.failf "open replay: %s" (Replay.error_to_string e)

(* --- reverse-step differential --------------------------------------------- *)

(** Record a session that breaks in [work] and single-steps [k] times,
    then walk the whole timeline backwards: after [m] reverse steps the
    replayed target must answer exactly like a fresh forward session
    that stopped at the breakpoint and stepped [k - m] times. *)
let timeline_case arch () =
  let k = 9 in
  let vars = [ "x"; "g" ] in
  let s = Testkit.debug_session ~arch work_sources in
  Ldb.start_record s.Testkit.tg ~spacing:4;
  ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "work" : int);
  expect_stop "continue" (Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg));
  (* unplant so stepping moves off the trap site; the restoring store is
     itself recorded and replayed *)
  Ldb_ldb.Breakpoint.remove_all s.Testkit.tg.Ldb.tg_breaks s.Testkit.tg.Ldb.tg_wire;
  for _ = 1 to k do
    ignore (Testkit.ok (Ldb.step_instruction s.Testkit.d s.Testkit.tg) : Ldb.state)
  done;
  let rp = open_replay s in
  let fresh j =
    let f = Testkit.debug_session ~arch work_sources in
    ignore (Ldb.break_function f.Testkit.d f.Testkit.tg "work" : int);
    expect_stop "fresh continue" (Testkit.ok (Ldb.continue_ f.Testkit.d f.Testkit.tg));
    Ldb_ldb.Breakpoint.remove_all f.Testkit.tg.Ldb.tg_breaks f.Testkit.tg.Ldb.tg_wire;
    for _ = 1 to j do
      ignore (Testkit.ok (Ldb.step_instruction f.Testkit.d f.Testkit.tg) : Ldb.state)
    done;
    view f.Testkit.d f.Testkit.tg ~vars
  in
  let tg = reach (Replay.seek_end rp) in
  check Alcotest.string
    (Arch.name arch ^ ": end of history equals the live session")
    (view s.Testkit.d s.Testkit.tg ~vars)
    (view s.Testkit.d tg ~vars);
  let views = ref [] in
  for m = 1 to k do
    let tg = reach (Replay.rstep rp) in
    let v = view s.Testkit.d tg ~vars in
    views := v :: !views;
    check Alcotest.string
      (Printf.sprintf "%s: %d reverse steps = fresh run stepped %d times"
         (Arch.name arch) m (k - m))
      (fresh (k - m)) v
  done;
  (* PR-9 validity must keep working in reverse: early in [work] the
     local prints as uninitialized, later it prints its value *)
  check Alcotest.bool (Arch.name arch ^ ": some historical view warns uninitialized")
    true
    (List.exists (contains ~needle:"uninitialized") !views);
  check Alcotest.bool (Arch.name arch ^ ": some historical view prints x = 5") true
    (List.exists (contains ~needle:"x = 5") !views)

(* --- reverse-continue differential ----------------------------------------- *)

(** Three breakpoint hits forward, then rcontinue back through them:
    each previous stop must equal a fresh session continued that many
    times, and running out of stops is a typed end-of-history. *)
let rcontinue_case arch () =
  let vars = [ "total"; "k" ] in
  let s = Testkit.debug_session ~arch loop_sources in
  Ldb.start_record s.Testkit.tg ~spacing:32;
  ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "bump" : int);
  for _ = 1 to 3 do
    expect_stop "continue" (Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg))
  done;
  let rp = open_replay s in
  let fresh j =
    let f = Testkit.debug_session ~arch loop_sources in
    ignore (Ldb.break_function f.Testkit.d f.Testkit.tg "bump" : int);
    for _ = 1 to j do
      expect_stop "fresh continue" (Testkit.ok (Ldb.continue_ f.Testkit.d f.Testkit.tg))
    done;
    view f.Testkit.d f.Testkit.tg ~vars
  in
  let tg = reach (Replay.seek_end rp) in
  check Alcotest.string
    (Arch.name arch ^ ": end of history equals the live session")
    (view s.Testkit.d s.Testkit.tg ~vars)
    (view s.Testkit.d tg ~vars);
  let tg = reach (Replay.rcontinue rp) in
  check Alcotest.string
    (Arch.name arch ^ ": one rcontinue = second stop")
    (fresh 2)
    (view s.Testkit.d tg ~vars);
  let tg = reach (Replay.rcontinue rp) in
  check Alcotest.string
    (Arch.name arch ^ ": two rcontinues = first stop")
    (fresh 1)
    (view s.Testkit.d tg ~vars);
  (* one more lands at the start of recorded history: the paused
     process exactly as it was when recording began *)
  let start =
    let f = Testkit.debug_session ~arch loop_sources in
    view f.Testkit.d f.Testkit.tg ~vars
  in
  let tg = reach (Replay.rcontinue rp) in
  check Alcotest.string
    (Arch.name arch ^ ": three rcontinues = start of recording")
    start
    (view s.Testkit.d tg ~vars);
  (match Replay.rcontinue rp with
  | Error `End_of_history -> ()
  | Ok _ -> Alcotest.fail "rcontinue past the beginning succeeded"
  | Error e -> Alcotest.failf "expected end of history, got %s" (Replay.error_to_string e));
  match Replay.rstep rp with
  | Error `End_of_history -> ()
  | Ok _ -> Alcotest.fail "rstep past the beginning succeeded"
  | Error e -> Alcotest.failf "expected end of history, got %s" (Replay.error_to_string e)

(* --- run back to the last write --------------------------------------------- *)

let rwatch_case () =
  let s = Testkit.debug_session ~arch:Arch.Mips writes_sources in
  Ldb.start_record s.Testkit.tg ~spacing:16;
  ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "finish" : int);
  expect_stop "continue" (Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg));
  let rp = open_replay s in
  let tg = reach (Replay.seek_end rp) in
  let range name =
    match Ldb.variable_range s.Testkit.d tg (Ldb.top_frame s.Testkit.d tg) name with
    | Ok r -> r
    | Error m -> Alcotest.failf "variable_range %s: %s" name m
  in
  let _, addr, size = range "x" in
  let _, yaddr, ysize = range "y" in
  let read tg name =
    Ldb.read_int_var s.Testkit.d tg (Ldb.top_frame s.Testkit.d tg) name
  in
  (* land just after the last of the three writes *)
  let tg, _pos =
    match Replay.run_back_to_write rp ~addr ~size with
    | Ok r -> r
    | Error e -> Alcotest.failf "rwatch x: %s" (Replay.error_to_string e)
  in
  check Alcotest.int "x just after its last write" 3 (read tg "x");
  (* one instruction earlier the previous value is still there *)
  let tg = reach (Replay.rstep rp) in
  check Alcotest.int "x one instruction before the last write" 2 (read tg "x");
  (* from that point, the most recent write is the second one *)
  let tg, _pos =
    match Replay.run_back_to_write rp ~addr ~size with
    | Ok r -> r
    | Error e -> Alcotest.failf "rwatch x again: %s" (Replay.error_to_string e)
  in
  check Alcotest.int "x just after its previous write" 2 (read tg "x");
  (* a variable nothing ever writes is a typed miss, not a crash *)
  match Replay.run_back_to_write rp ~addr:yaddr ~size:ysize with
  | Error `No_write -> ()
  | Ok _ -> Alcotest.fail "found a write to a never-written variable"
  | Error e -> Alcotest.failf "expected no-write, got %s" (Replay.error_to_string e)

(* --- determinism gate -------------------------------------------------------- *)

(** The CI job's contract: two recordings of the same seeded session are
    byte-identical, and replaying one to the end reproduces the live
    process's registers and memory exactly (compared as core dumps).
    When LDB_TRACE_DIR is set the traces are written there so a failing
    CI run can upload them. *)
let determinism_case () =
  let script (s : Testkit.session) =
    Ldb.start_record s.Testkit.tg ~spacing:8;
    ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "bump" : int);
    for _ = 1 to 3 do
      expect_stop "continue" (Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg))
    done
  in
  let s1 = Testkit.debug_session ~arch:Arch.Mips loop_sources in
  let s2 = Testkit.debug_session ~arch:Arch.Mips loop_sources in
  script s1;
  script s2;
  let t1 = Ldb.trace_bytes s1.Testkit.tg and t2 = Ldb.trace_bytes s2.Testkit.tg in
  (match Sys.getenv_opt "LDB_TRACE_DIR" with
  | Some dir ->
      let wr name bytes =
        Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
            Out_channel.output_string oc bytes)
      in
      wr "trace-a.bin" t1;
      wr "trace-b.bin" t2
  | None -> ());
  check Alcotest.bool "same session records byte-identical traces" true
    (String.equal t1 t2);
  let image = Ldb.load_image s1.Testkit.d ~loader_ps:s1.Testkit.proc.Host.hp_loader_ps in
  let rp =
    match Replay.of_string s1.Testkit.d ~name:"det" ~image t1 with
    | Ok (rp, []) -> rp
    | Ok (_, w :: _) -> Alcotest.failf "salvage: %s" (Trace.salvage_to_string w)
    | Error e -> Alcotest.failf "open: %s" (Replay.error_to_string e)
  in
  let tg = reach (Replay.seek_end rp) in
  check Alcotest.bool "replayed end dumps the live core" true
    (String.equal (Ldb.core_bytes tg) (Ldb.core_bytes s1.Testkit.tg))

(* --- trace codec -------------------------------------------------------------- *)

(** qcheck: a checkpoint really is an LDBCORE1 dump plus a replay
    cursor — random cores wrapped in checkpoints round-trip through the
    trace codec intact, alongside neighbouring events. *)
let gen_ck_trace : Trace.t QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    Testkit.core_gen >>= fun co ->
    int_bound 20 >>= fun ev ->
    oneof [ return 0; int_range 1 1000 ] >>= fun delta ->
    int_bound 31 >>= fun signal ->
    int_bound 255 >>= fun code ->
    oneofl
      [ Trace.Ck_running; Trace.Ck_stopped { signal; code }; Trace.Ck_exited code ]
    >>= fun ck_status ->
    let ck =
      { Trace.ck_ev = ev; ck_delta = delta; ck_status; ck_core = Core.to_string co }
    in
    oneofl Arch.all >>= fun arch ->
    int_range 1 1000 >>= fun fuel ->
    bool >>= fun can_step ->
    int_range 1 64 >>= fun spacing ->
    string_size ~gen:char (int_bound 6) >>= fun stored ->
    return
      { Trace.tr_arch = arch; tr_fuel = fuel; tr_can_step = can_step;
        tr_spacing = spacing;
        tr_events =
          [ Trace.Checkpoint ck;
            Trace.Req (Proto.Store { space = 'd'; addr = 0x40; bytes = "\x01" ^ stored });
            Trace.Req Proto.Continue;
            Trace.Stop { signal; code; pc = ev * 4; instrs = delta + 1 };
            Trace.Req Proto.Step;
            Trace.Exit { status = code; instrs = 1 } ] }
  in
  QCheck.make gen

let prop_checkpoint_roundtrip =
  Testkit.qtest "checkpointed traces roundtrip" ~count:200 gen_ck_trace (fun tr ->
      match Trace.of_string (Trace.to_string tr) with
      | Ok (tr', []) -> tr' = tr
      | Ok (_, _ :: _) | Error _ -> false)

let prop_decode_total =
  Testkit.qtest "trace of_string never raises" ~count:300
    QCheck.(string_gen_of_size (Gen.int_bound 400) Gen.char)
    (fun s -> match Trace.of_string s with Ok _ | Error _ -> true)

(** Salvage: damage ends the usable prefix with a typed report instead
    of an exception, and every prefix of a trace is itself a trace. *)
let salvage_case () =
  let s = Testkit.debug_session ~arch:Arch.Vax writes_sources in
  Ldb.start_record s.Testkit.tg ~spacing:16;
  ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "finish" : int);
  expect_stop "continue" (Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg));
  let bytes = Ldb.trace_bytes s.Testkit.tg in
  let full =
    match Trace.of_string bytes with
    | Ok (tr, []) -> tr
    | _ -> Alcotest.fail "pristine trace did not decode cleanly"
  in
  let nev = List.length full.Trace.tr_events in
  check Alcotest.bool "the recording captured several events" true (nev > 2);
  (* truncation: drop the tail mid-record *)
  (match Trace.of_string (String.sub bytes 0 (String.length bytes - 3)) with
  | Ok (tr, [ Trace.Truncated _ ]) ->
      check Alcotest.bool "truncated trace keeps a strict prefix" true
        (List.length tr.Trace.tr_events < nev)
  | Ok (_, ws) ->
      Alcotest.failf "expected one truncation report, got %d" (List.length ws)
  | Error m -> Alcotest.failf "truncated trace hard-failed: %s" m);
  (* corruption: flip a byte near the end; the damaged record is
     reported by CRC and everything before it survives *)
  let corrupt = Bytes.of_string bytes in
  let i = String.length bytes - 2 in
  Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0xff));
  (match Trace.of_string (Bytes.to_string corrupt) with
  | Ok (tr, [ w ]) ->
      (match w with
      | Trace.Bad_crc _ | Trace.Bad_record _ | Trace.Truncated _ -> ());
      check Alcotest.bool "corrupt trace keeps a strict prefix" true
        (List.length tr.Trace.tr_events < nev);
      check Alcotest.bool "salvage report renders" true
        (String.length (Trace.salvage_to_string w) > 0)
  | Ok (_, ws) -> Alcotest.failf "expected one salvage report, got %d" (List.length ws)
  | Error m -> Alcotest.failf "corrupt trace hard-failed: %s" m);
  (* header damage is a hard error, not a quiet empty history *)
  let magicless = Bytes.of_string bytes in
  Bytes.set magicless 0 'X';
  match Trace.of_string (Bytes.to_string magicless) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic decoded"

(** Traces recorded before trace compaction ("LDBTRACE1": no compression
    flag in 'C' bodies, cores stored raw) still decode — the decoder
    keys the checkpoint layout on the magic, so old recordings survive
    the format bump instead of failing with a confusing flag error. *)
let v1_compat_case () =
  let u32 b v =
    let cell = Bytes.create 4 in
    Ldb_util.Endian.set_u32 Ldb_util.Endian.Little cell 0 (Int32.of_int v);
    Buffer.add_bytes b cell
  in
  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s
  in
  let body_of = function
    | Trace.Req r -> ('Q', Proto.encode_request r)
    | Trace.Stop { signal; code; pc; instrs } ->
        let b = Buffer.create 16 in
        List.iter (u32 b) [ signal; code; pc; instrs ];
        ('S', Buffer.contents b)
    | Trace.Exit { status; instrs } ->
        let b = Buffer.create 8 in
        List.iter (u32 b) [ status; instrs ];
        ('X', Buffer.contents b)
    | Trace.Checkpoint ck ->
        (* the v1 layout: kind/a/b then the raw core length directly,
           with no compression flag byte in between *)
        let b = Buffer.create 64 in
        u32 b ck.Trace.ck_ev;
        u32 b ck.Trace.ck_delta;
        (match ck.Trace.ck_status with
        | Trace.Ck_running ->
            Buffer.add_char b 'r';
            u32 b 0;
            u32 b 0
        | Trace.Ck_stopped { signal; code } ->
            Buffer.add_char b 's';
            u32 b signal;
            u32 b code
        | Trace.Ck_exited status ->
            Buffer.add_char b 'x';
            u32 b status;
            u32 b 0);
        str b ck.Trace.ck_core;
        ('C', Buffer.contents b)
  in
  let ck =
    { Trace.ck_ev = 1; ck_delta = 7;
      ck_status = Trace.Ck_stopped { signal = 5; code = 0 };
      (* Trace treats the core as opaque bytes; content is not parsed here *)
      ck_core = "pretend-core-bytes \x00\x01\x02 with runs aaaaaaaaaaaa" }
  in
  let events =
    [ Trace.Req Proto.Continue;
      Trace.Stop { signal = 5; code = 0; pc = 0x40; instrs = 9 };
      Trace.Checkpoint ck;
      Trace.Exit { status = 0; instrs = 3 } ]
  in
  let b = Buffer.create 256 in
  Buffer.add_string b "LDBTRACE1";
  str b (Arch.name Arch.Mips);
  u32 b 100;
  u32 b 8;
  Buffer.add_char b 'S';
  List.iter
    (fun e ->
      let tag, body = body_of e in
      Buffer.add_char b tag;
      u32 b (String.length body);
      Buffer.add_string b body;
      u32 b (Ldb_util.Crc32.string body))
    events;
  match Trace.of_string (Buffer.contents b) with
  | Ok (tr, []) ->
      check Alcotest.int "v1 trace decodes every record" (List.length events)
        (List.length tr.Trace.tr_events);
      check Alcotest.bool "v1 checkpoint core survives raw" true
        (tr.Trace.tr_events = events)
  | Ok (_, w :: _) ->
      Alcotest.failf "v1 trace salvaged: %s" (Trace.salvage_to_string w)
  | Error m -> Alcotest.failf "v1 trace hard-failed: %s" m

(** A replay session over a truncated trace degrades to the shorter
    history instead of raising. *)
let truncated_replay_case () =
  let s = Testkit.debug_session ~arch:Arch.Mips loop_sources in
  Ldb.start_record s.Testkit.tg ~spacing:8;
  ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "bump" : int);
  for _ = 1 to 2 do
    expect_stop "continue" (Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg))
  done;
  let bytes = Ldb.trace_bytes s.Testkit.tg in
  let image = Ldb.load_image s.Testkit.d ~loader_ps:s.Testkit.proc.Host.hp_loader_ps in
  let cut = String.sub bytes 0 (String.length bytes * 3 / 4) in
  match Replay.of_string s.Testkit.d ~name:"cut" ~image cut with
  | Ok (rp, _ :: _) -> (
      (* the shortened history still materializes *)
      match Replay.seek_end rp with
      | Ok tg -> ignore (view s.Testkit.d tg ~vars:[ "total" ] : string)
      | Error e -> Alcotest.failf "seek over salvaged trace: %s" (Replay.error_to_string e))
  | Ok (_, []) -> Alcotest.fail "cutting a quarter of the trace reported no salvage"
  | Error (`Bad_trace _) -> ()  (* cut inside the header: typed refusal is fine *)
  | Error e -> Alcotest.failf "unexpected error: %s" (Replay.error_to_string e)

let () =
  let arch_cases name case =
    List.map
      (fun arch -> Alcotest.test_case (name ^ " on " ^ Arch.name arch) `Quick (case arch))
      Arch.all
  in
  Alcotest.run "replay"
    [
      ("codec", [ prop_checkpoint_roundtrip; prop_decode_total ]);
      ( "salvage",
        [ Alcotest.test_case "typed reports, usable prefix" `Quick salvage_case;
          Alcotest.test_case "v1 (pre-compaction) traces decode" `Quick
            v1_compat_case;
          Alcotest.test_case "replay over a truncated trace" `Quick
            truncated_replay_case ] );
      ("rstep", arch_cases "reverse-step differential" timeline_case);
      ("rcontinue", arch_cases "reverse-continue differential" rcontinue_case);
      ( "rwatch",
        [ Alcotest.test_case "run back to last write" `Quick rwatch_case ] );
      ( "determinism",
        [ Alcotest.test_case "identical traces, identical end state" `Quick
            determinism_case ] );
    ]
