(** Tests for dbgcheck (the whole-artifact debug-info verifier) and the IR
    dataflow lint:

    - clean builds of the example programs produce zero findings on all
      four targets;
    - a seeded-defect corpus (mirroring test/test_pslint.ml's): every
      mutation of a clean artifact — planted nops overwritten, anchors
      re-pointed, frame sizes corrupted, stabs skewed — must be flagged;
    - the JSON finding format is pinned (a contract for tooling);
    - the linker driver's [`Fail]/[`Warn]/[`Off] dbgcheck modes;
    - Stabsemit's u16 line clamp, at the boundary and end-to-end;
    - the IR lint: uninitialized reads, dead stores, unreachable
      stopping points, with correct source positions. *)

open Ldb_machine
module Link = Ldb_link.Link
module Nm = Ldb_link.Nm
module Driver = Ldb_link.Driver
module Sd = Ldb_stabsdbg.Stabsdbg
module F = Ldb_dbgcheck.Finding
module D = Ldb_dbgcheck.Dbgcheck
module Irlint = Ldb_cc.Irlint

let check = Alcotest.check

let structs_c =
  {|
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; char tag; };
static struct rect r;
double scale(double f, int k) { return f * k + 0.5; }
char *name(void) { return "rect"; }
int main(void)
{
    struct point p;
    double d;
    p.x = 3; p.y = 4;
    r.lo = p;
    r.hi.x = 7; r.hi.y = 8;
    r.tag = 'r';
    d = scale(1.5, 2);
    printf("%d %d\n", r.hi.x - r.lo.x, r.hi.y - r.lo.y);
    return (int) d;
}
|}

let register_c =
  {|
int sum(int n)
{
    register int s;
    int i;
    s = 0;
    for (i = 1; i <= n; i++) s = s + i;
    return s;
}
int main(void) { return sum(3); }
|}

let build ~arch sources = Driver.build ~arch sources

let has kind fs = List.exists (fun (f : F.t) -> f.F.kind = kind) fs

let pp_findings fs = String.concat "\n" (List.map F.to_string fs)

let expect_flagged name kind fs =
  if not (has kind fs) then
    Alcotest.failf "%s: expected a %s finding, got:\n%s" name (F.kind_name kind)
      (pp_findings fs)

(* --- clean builds ------------------------------------------------------------- *)

let test_clean_examples () =
  List.iter
    (fun arch ->
      List.iter
        (fun sources ->
          let img, ps = build ~arch sources in
          let fs = D.check img ps in
          check Alcotest.string
            (Printf.sprintf "%s %s clean" (Arch.name arch) (fst (List.hd sources)))
            "" (pp_findings fs))
        [
          [ ("fib.c", Testkit.fib_c) ];
          [ ("structs.c", structs_c) ];
          [ ("register.c", register_c) ];
        ])
    Arch.all

(* --- mutation helpers ---------------------------------------------------------- *)

let patch_bytes s off replacement =
  let b = Bytes.of_string s in
  Bytes.blit_string replacement 0 b off (String.length replacement);
  Bytes.to_string b

(** Replace the first occurrence of [pat] after [from] with [repl]. *)
let replace_first ?(from = 0) s pat repl =
  let n = String.length s and m = String.length pat in
  let rec find i =
    if i + m > n then Alcotest.failf "pattern %S not found" pat
    else if String.sub s i m = pat then i
    else find (i + 1)
  in
  let i = find from in
  String.sub s 0 i ^ repl ^ String.sub s (i + m) (n - i - m)

let index_of s pat =
  let n = String.length s and m = String.length pat in
  let rec find i =
    if i + m > n then Alcotest.failf "pattern %S not found" pat
    else if String.sub s i m = pat then i
    else find (i + 1)
  in
  find 0

(** The first stopping point of the first function: its code address and
    the data-segment offset of the anchor slot word that holds it. *)
let first_stop img =
  let uv = List.hd (Sd.units (Sd.parse img.Link.i_stabs)) in
  let anchor = Ldb_cc.Sym.anchor_name uv.Sd.uv_name in
  let nm = Nm.run img in
  let aaddr =
    match List.find_opt (fun (e : Nm.entry) -> e.Nm.name = anchor) nm with
    | Some e -> e.Nm.addr
    | None -> Alcotest.failf "anchor %s not in nm" anchor
  in
  let fv = List.hd uv.Sd.uv_funcs in
  let sline = List.hd fv.Sd.fv_slines in
  let slot_off = aaddr + (4 * sline.Sd.st_value) - Ram.Layout.data_base in
  let stop =
    Int32.to_int
      (Ldb_util.Endian.get_u32 (Arch.endian img.Link.i_arch)
         (Bytes.of_string img.Link.i_data) slot_off)
  in
  (stop, slot_off)

(** Offset of the first n_sline record in a raw stabs string. *)
let first_sline_off stabs =
  let u16 i = Char.code stabs.[i] lor (Char.code stabs.[i + 1] lsl 8) in
  let rec scan pos =
    if pos >= String.length stabs then Alcotest.fail "no n_sline record"
    else if Char.code stabs.[pos] = Ldb_cc.Stabsemit.n_sline then pos
    else scan (pos + 9 + u16 (pos + 7))
  in
  scan 0

(** A byte sequence the target's decoder rejects. *)
let invalid_encoding (t : Target.t) =
  let rec try_byte c =
    if c < 0 then Alcotest.fail "no invalid encoding found"
    else
      let s = String.make (max 4 t.Target.insn_unit) (Char.chr c) in
      match Target.decode t ~fetch:(fun i -> Char.code s.[i mod String.length s]) 0 with
      | _ -> try_byte (c - 1)
      | exception Optab.Bad_encoding _ -> s
  in
  try_byte 255

(* --- the seeded-defect corpus -------------------------------------------------- *)

(* stops family: all on SIM-SPARC (fixed 4-byte instructions, no RPT) *)

let sparc_fib () = build ~arch:Arch.Sparc [ ("fib.c", Testkit.fib_c) ]

let test_mut_bad_nop () =
  let img, ps = sparc_fib () in
  let stop, _ = first_stop img in
  let t = Target.of_arch Arch.Sparc in
  let other = Target.encode t (Insn.Mov (1, 2)) in
  let img =
    { img with Link.i_code = patch_bytes img.Link.i_code (stop - Ram.Layout.code_base) other }
  in
  expect_flagged "overwritten nop" F.Bad_nop (D.check img ps)

let test_mut_misaligned_stop () =
  let img, ps = sparc_fib () in
  let stop, slot_off = first_stop img in
  let b = Bytes.of_string img.Link.i_data in
  Ldb_util.Endian.set_u32 (Arch.endian Arch.Sparc) b slot_off (Int32.of_int (stop + 1));
  let img = { img with Link.i_data = Bytes.to_string b } in
  expect_flagged "slot re-pointed off-boundary" F.Misaligned_stop (D.check img ps)

let test_mut_nop_advance () =
  let img, ps = sparc_fib () in
  let t = Target.of_arch Arch.Sparc in
  let fs = D.check ~tdesc:{ t with Target.nop_advance = 8 } img ps in
  expect_flagged "skewed nop_advance" F.Nop_advance fs

let test_mut_bad_decode () =
  let img, ps = sparc_fib () in
  let stop, _ = first_stop img in
  let t = Target.of_arch Arch.Sparc in
  let img =
    { img with
      Link.i_code =
        patch_bytes img.Link.i_code (stop - Ram.Layout.code_base) (invalid_encoding t) }
  in
  expect_flagged "undecodable code bytes" F.Bad_decode (D.check img ps)

(* symbols family *)

let test_mut_unresolved_anchor () =
  let img, ps = sparc_fib () in
  (* rename the anchor the symbol table claims, so it resolves nowhere *)
  let i = index_of ps "/anchors [ /_stanchor__V" in
  let ps' = patch_bytes ps (i + String.length "/anchors [ /_stanchor__V") "zzzzzz" in
  expect_flagged "renamed symtab anchor" F.Unresolved_sym (D.check img ps')

let test_mut_anchor_bad_segment () =
  let img, ps = sparc_fib () in
  (* re-point the anchor map entry into the code segment *)
  let i = index_of ps "/anchormap <<" in
  let j = i + index_of (String.sub ps i (String.length ps - i)) "16#" in
  let ps' = patch_bytes ps (j + 3) "00001000" in
  expect_flagged "anchor re-pointed into code" F.Bad_segment (D.check img ps')

let test_mut_alias_clash () =
  let img, ps = sparc_fib () in
  (* give a data symbol a text symbol's address *)
  let anchor_name =
    Ldb_cc.Sym.anchor_name "fib.c"
  in
  let symbols =
    List.map
      (fun (name, addr, kind) ->
        if name = anchor_name then (name, Ram.Layout.code_base, kind) else (name, addr, kind))
      img.Link.i_symbols
  in
  expect_flagged "data symbol aliasing text" F.Alias_clash
    (D.check { img with Link.i_symbols = symbols } ps)

let test_mut_dangling_slot () =
  let img, ps = sparc_fib () in
  (* skew one stabs stopping point to a slot index far outside the anchor *)
  let off = first_sline_off img.Link.i_stabs in
  let img =
    { img with Link.i_stabs = patch_bytes img.Link.i_stabs (off + 3) "\xf0\x00\x00\x00" }
  in
  expect_flagged "stabs slot index out of range" F.Dangling_slot (D.check img ps)

(* frames family *)

let test_mut_frame_size () =
  let img, ps = build ~arch:Arch.Mips [ ("fib.c", Testkit.fib_c) ] in
  (* corrupt /framesize inside the deferred unit body *)
  let i = index_of ps "/framesize " in
  let j = i + String.length "/framesize " in
  let rec digits k = if k < String.length ps && ps.[k] >= '0' && ps.[k] <= '9' then digits (k + 1) else k in
  let k = digits j in
  let ps' = String.sub ps 0 j ^ "7" ^ String.sub ps k (String.length ps - k) in
  let fs = D.check img ps' in
  expect_flagged "corrupted frame size" F.Frame_bounds fs;
  (* on SIM-MIPS the runtime procedure table is a second witness *)
  expect_flagged "corrupted frame size vs RPT" F.Rpt_mismatch fs

let test_mut_bad_reg_var () =
  let img, ps = build ~arch:Arch.Sparc [ ("register.c", register_c) ] in
  (* SIM-SPARC register variables are r20-r25; the first register variable
     gets r20.  Re-point its where procedure at r1. *)
  let ps' = replace_first ps "20 Regset0" "1 Regset0" in
  expect_flagged "register variable outside reg_vars" F.Bad_reg_var (D.check img ps')

let test_mut_rpt_missing () =
  let img, ps = build ~arch:Arch.Mips [ ("fib.c", Testkit.fib_c) ] in
  let nm = Nm.run img in
  let fib_addr =
    (List.find (fun (e : Nm.entry) -> e.Nm.name = "_fib") nm).Nm.addr
  in
  let img =
    { img with Link.i_rpt = List.filter (fun (e : Rpt.entry) -> e.Rpt.addr <> fib_addr) img.Link.i_rpt }
  in
  expect_flagged "dropped RPT entry" F.Rpt_mismatch (D.check img ps)

let test_mut_rpt_skew () =
  let img, ps = build ~arch:Arch.Mips [ ("fib.c", Testkit.fib_c) ] in
  let img =
    { img with
      Link.i_rpt =
        List.map (fun (e : Rpt.entry) -> { e with Rpt.frame_size = e.Rpt.frame_size + 8 })
          img.Link.i_rpt }
  in
  expect_flagged "skewed RPT frame size" F.Rpt_mismatch (D.check img ps)

(* differential family *)

let test_mut_stabs_line_skew () =
  let img, ps = sparc_fib () in
  let off = first_sline_off img.Link.i_stabs in
  let desc = Char.code img.Link.i_stabs.[off + 1] in
  let img =
    { img with
      Link.i_stabs =
        patch_bytes img.Link.i_stabs (off + 1) (String.make 1 (Char.chr ((desc + 1) land 0xff))) }
  in
  expect_flagged "skewed stabs line" F.Stabs_mismatch (D.check img ps)

let test_mut_stabs_name_skew () =
  let img, ps = sparc_fib () in
  (* rename a symbol in the stabs view only *)
  let i = index_of img.Link.i_stabs "fib:" in
  let img = { img with Link.i_stabs = patch_bytes img.Link.i_stabs i "fub:" } in
  expect_flagged "renamed stabs symbol" F.Stabs_mismatch (D.check img ps)

let test_mut_table_error () =
  let img, ps = sparc_fib () in
  expect_flagged "corrupt loader PostScript" F.Table_error
    (D.check img (ps ^ "\nthis_op_is_not_defined\n"))

(* validity family: seeded mutations of the emitted ranges in each table;
   every mutant must be flagged *)

let fib_sources = [ ("fib.c", Testkit.fib_c) ]

(** Offset and total length of the first [n_valid] record in raw stabs. *)
let first_valid_record stabs =
  let u16 i = Char.code stabs.[i] lor (Char.code stabs.[i + 1] lsl 8) in
  let rec scan pos =
    if pos >= String.length stabs then Alcotest.fail "no n_valid record"
    else
      let len = 9 + u16 (pos + 7) in
      if Char.code stabs.[pos] = Ldb_cc.Stabsemit.n_valid then (pos, len)
      else scan (pos + len)
  in
  scan 0

(** Remove the first PostScript [/validity [ ... ]] clause at or after
    [from], returning [None] when there is none. *)
let drop_ps_validity ?(from = 0) ps =
  let n = String.length ps in
  let pat = "/validity" in
  let m = String.length pat in
  let rec find i =
    if i + m > n then None
    else if String.sub ps i m = pat then Some i
    else find (i + 1)
  in
  match find from with
  | None -> None
  | Some i ->
      let j = String.index_from ps i ']' in
      Some (String.sub ps 0 i ^ String.sub ps (j + 1) (n - j - 1))

(** Remove every [n_valid] record from a raw stabs string. *)
let drop_all_stabs_valid stabs =
  let u16 i = Char.code stabs.[i] lor (Char.code stabs.[i + 1] lsl 8) in
  let buf = Buffer.create (String.length stabs) in
  let rec scan pos =
    if pos < String.length stabs then begin
      let len = 9 + u16 (pos + 7) in
      if Char.code stabs.[pos] <> Ldb_cc.Stabsemit.n_valid then
        Buffer.add_string buf (String.sub stabs pos len);
      scan (pos + len)
    end
  in
  scan 0;
  Buffer.contents buf

let test_mut_validity_ps_bad_fact () =
  let img, ps = sparc_fib () in
  (* splice a triple with fact code 9 into the first local's ranges *)
  let ps = replace_first ps "/validity [ " "/validity [ 9 9 9 " in
  expect_flagged "fact code 9" F.Validity_range (D.check img ps)

let test_mut_validity_ps_shifted () =
  let img, ps = sparc_fib () in
  (* the first range always opens at stop 0; shifting it leaves a gap *)
  let ps = replace_first ps "/validity [ 0 " "/validity [ 1 " in
  expect_flagged "shifted range cover" F.Validity_range (D.check img ps)

let test_mut_validity_ps_dropped () =
  let img, ps = sparc_fib () in
  let ps =
    match drop_ps_validity ps with
    | Some ps -> ps
    | None -> Alcotest.fail "no /validity clause to drop"
  in
  expect_flagged "PS ranges dropped" F.Validity_missing (D.check img ps)

let test_mut_validity_stabs_corrupt () =
  let img, ps = sparc_fib () in
  let stabs = img.Link.i_stabs in
  let pos, len = first_valid_record stabs in
  (* overwrite the first fact letter with one the decoder rejects *)
  let eq = String.index_from stabs (pos + 9) '=' in
  if eq >= pos + len then Alcotest.fail "n_valid record without a fact";
  let img = { img with Link.i_stabs = patch_bytes stabs (eq + 1) "x" } in
  expect_flagged "undecodable n_valid record" F.Validity_range (D.check img ps)

let test_mut_validity_stabs_swapped () =
  let img, ps = sparc_fib () in
  let stabs = img.Link.i_stabs in
  let pos, len = first_valid_record stabs in
  (* swap the first fact: the record still decodes but now disagrees with
     the PostScript table *)
  let eq = String.index_from stabs (pos + 9) '=' in
  if eq >= pos + len then Alcotest.fail "n_valid record without a fact";
  let swapped = if stabs.[eq + 1] = 'u' then "v" else "u" in
  let img = { img with Link.i_stabs = patch_bytes stabs (eq + 1) swapped } in
  expect_flagged "swapped stabs fact" F.Validity_stabs_mismatch (D.check img ps)

let test_mut_validity_stabs_dropped () =
  let img, ps = sparc_fib () in
  let pos, len = first_valid_record img.Link.i_stabs in
  let stabs = img.Link.i_stabs in
  let img =
    { img with
      Link.i_stabs =
        String.sub stabs 0 pos ^ String.sub stabs (pos + len) (String.length stabs - pos - len) }
  in
  expect_flagged "stabs record spliced out" F.Validity_missing (D.check img ps)

let test_mut_validity_unsound () =
  let img, ps = sparc_fib () in
  (* scrub the ranges from BOTH tables, consistently: every artifact-level
     check stays clean, and only recomputing the analysis from source can
     tell that the tables claim less than the compiler proves *)
  let rec scrub ps = match drop_ps_validity ps with Some ps -> scrub ps | None -> ps in
  let ps = scrub ps in
  let img = { img with Link.i_stabs = drop_all_stabs_valid img.Link.i_stabs } in
  let artifact_only = D.check img ps in
  check Alcotest.string "consistent scrub passes the artifact checks" ""
    (pp_findings artifact_only);
  expect_flagged "recompute from source" F.Validity_unsound
    (D.check ~sources:fib_sources img ps)

(* --- the u16 line clamp --------------------------------------------------------- *)

let test_clamp_boundary () =
  let module E = Ldb_cc.Stabsemit in
  E.clamp_diagnostics := [];
  check Alcotest.int "65535 passes" 65535 (E.clamp_desc ~what:"x" 65535);
  check Alcotest.int "no diagnostic at the boundary" 0 (List.length !E.clamp_diagnostics);
  check Alcotest.int "65536 clamps" 65535 (E.clamp_desc ~what:"x" 65536);
  check Alcotest.int "negative clamps to 0" 0 (E.clamp_desc ~what:"x" (-3));
  check Alcotest.int "two diagnostics" 2 (List.length !E.clamp_diagnostics);
  E.clamp_diagnostics := []

let test_clamp_end_to_end () =
  (* a function living past line 65535: the PostScript table keeps the
     real line, the stabs clamp — the differential pass must report the
     clamp (and nothing else) *)
  let module E = Ldb_cc.Stabsemit in
  E.clamp_diagnostics := [];
  let src = String.make 65600 '\n' ^ "int main(void) { return 0; }\n" in
  let img, ps = build ~arch:Arch.Vax [ ("deep.c", src) ] in
  check Alcotest.bool "emitter recorded the clamp" true (!E.clamp_diagnostics <> []);
  let fs = D.check img ps in
  expect_flagged "clamped line" F.Line_clamped fs;
  List.iter
    (fun (f : F.t) ->
      if f.F.kind <> F.Line_clamped then
        Alcotest.failf "unexpected finding: %s" (F.to_string f))
    fs;
  E.clamp_diagnostics := []

(* --- JSON format pin ------------------------------------------------------------ *)

let test_json_pin () =
  let f = { F.kind = F.Bad_nop; target = "mips"; where = "0x001000"; msg = {|say "hi"|} } in
  check Alcotest.string "finding JSON"
    {|{"target":"mips","kind":"bad-nop","where":"0x001000","msg":"say \"hi\""}|} (F.to_json f);
  let g = { Irlint.kind = Irlint.Uninit_read; file = "a.c"; line = 3; col = 5; msg = "m" } in
  check Alcotest.string "irlint JSON"
    {|{"kind":"uninit-read","file":"a.c","line":3,"col":5,"msg":"m"}|}
    (Irlint.finding_to_json g);
  (* every kind name round-trips *)
  List.iter
    (fun k ->
      check Alcotest.bool (F.kind_name k) true (F.kind_of_name (F.kind_name k) = Some k))
    [ F.Bad_nop; F.Misaligned_stop; F.Nop_advance; F.Bad_decode; F.Unresolved_sym;
      F.Bad_segment; F.Alias_clash; F.Dangling_slot; F.Frame_bounds; F.Bad_reg_var;
      F.Rpt_mismatch; F.Stabs_mismatch; F.Line_clamped; F.Hint_mismatch;
      F.Validity_missing; F.Validity_range; F.Validity_stabs_mismatch;
      F.Validity_unsound; F.Table_error ]

(* --- driver modes ---------------------------------------------------------------- *)

let with_driver_state f =
  let mode = !Driver.dbgcheck_mode and hook = !Driver.dbgcheck_hook in
  let warnings = !Driver.dbgcheck_warnings in
  Fun.protect
    ~finally:(fun () ->
      Driver.dbgcheck_mode := mode;
      Driver.dbgcheck_hook := hook;
      Driver.dbgcheck_warnings := warnings)
    f

let test_driver_modes () =
  with_driver_state (fun () ->
      (* Off: hook never consulted *)
      Driver.dbgcheck_mode := `Off;
      Driver.dbgcheck_hook := Some (fun _ _ -> [ "boom" ]);
      Driver.dbgcheck_warnings := [];
      ignore (build ~arch:Arch.Vax [ ("fib.c", Testkit.fib_c) ]);
      check Alcotest.int "off: no warnings" 0 (List.length !Driver.dbgcheck_warnings);
      (* Warn: findings recorded, build succeeds *)
      Driver.dbgcheck_mode := `Warn;
      ignore (build ~arch:Arch.Vax [ ("fib.c", Testkit.fib_c) ]);
      check Alcotest.bool "warn: findings recorded" true
        (List.mem "boom" !Driver.dbgcheck_warnings);
      (* Warn: a crashing checker must not break the build *)
      Driver.dbgcheck_hook := Some (fun _ _ -> failwith "checker exploded");
      ignore (build ~arch:Arch.Vax [ ("fib.c", Testkit.fib_c) ]);
      (* Fail: findings raise *)
      Driver.dbgcheck_mode := `Fail;
      Driver.dbgcheck_hook := Some (fun _ _ -> [ "boom" ]);
      (match build ~arch:Arch.Vax [ ("fib.c", Testkit.fib_c) ] with
      | _ -> Alcotest.fail "Fail mode did not raise"
      | exception Link.Error m ->
          check Alcotest.bool "message carries the finding" true
            (String.length m >= 4));
      (* the real checker, Warn mode, clean program: no warnings *)
      D.install ~mode:`Warn ();
      Driver.dbgcheck_warnings := [];
      ignore (build ~arch:Arch.Vax [ ("fib.c", Testkit.fib_c) ]);
      check Alcotest.int "real checker: clean" 0 (List.length !Driver.dbgcheck_warnings))

(* --- IR dataflow lint ------------------------------------------------------------ *)

let irlint_of ?(arch = Arch.Vax) src =
  let saved = !Irlint.mode in
  Irlint.mode := `Warn;
  ignore (Irlint.take ());
  Fun.protect
    ~finally:(fun () -> Irlint.mode := saved)
    (fun () ->
      ignore (Ldb_cc.Compile.compile ~arch ~file:"t.c" src);
      Irlint.take ())

let find_kind kind fs = List.filter (fun (f : Irlint.finding) -> f.Irlint.kind = kind) fs

let test_ir_uninit_read () =
  let fs =
    irlint_of {|
int f(void)
{
    int x;
    int y;
    y = x + 1;
    return y;
}
|}
  in
  match find_kind Irlint.Uninit_read fs with
  | [ f ] ->
      check Alcotest.int "line" 6 f.Irlint.line;
      check Alcotest.bool "names x" true
        (String.length f.Irlint.msg >= 1 && String.sub f.Irlint.msg 0 1 = "x")
  | fs' -> Alcotest.failf "expected one uninit-read, got %d" (List.length fs')

let test_ir_conditional_init () =
  let fs =
    irlint_of {|
int k(int c)
{
    int x;
    if (c) x = 1;
    return x;
}
|}
  in
  check Alcotest.bool "may-uninit flagged" true (find_kind Irlint.Uninit_read fs <> [])

let test_ir_unreachable () =
  let fs =
    irlint_of {|
int g(void)
{
    int a;
    a = 1;
    return a;
    a = 2;
    return a;
}
|}
  in
  match find_kind Irlint.Unreachable fs with
  | [] -> Alcotest.fail "expected an unreachable finding"
  | f :: _ -> check Alcotest.int "line" 7 f.Irlint.line

let test_ir_dead_store () =
  let fs =
    irlint_of {|
int h(void)
{
    int x;
    x = 1;
    x = 2;
    return x;
}
|}
  in
  match find_kind Irlint.Dead_store fs with
  | [ f ] -> check Alcotest.int "line" 5 f.Irlint.line
  | fs' -> Alcotest.failf "expected one dead-store, got %d" (List.length fs')

let test_ir_examples_clean () =
  List.iter
    (fun arch ->
      List.iter
        (fun (file, src) ->
          let fs = irlint_of ~arch src in
          if fs <> [] then
            Alcotest.failf "%s on %s: %s" file (Arch.name arch)
              (String.concat "\n" (List.map Irlint.finding_to_string fs)))
        [ ("fib.c", Testkit.fib_c); ("structs.c", structs_c); ("register.c", register_c) ])
    Arch.all

let test_ir_fail_mode () =
  let saved = !Irlint.mode in
  Irlint.mode := `Fail;
  Fun.protect
    ~finally:(fun () -> Irlint.mode := saved)
    (fun () ->
      match
        Ldb_cc.Compile.compile ~arch:Arch.Vax ~file:"t.c"
          "int f(void) { int x; return x; }"
      with
      | _ -> Alcotest.fail "Fail mode did not raise"
      | exception Ldb_cc.Compile.Error m ->
          check Alcotest.bool "mentions uninit" true
            (String.length m > 0
            && index_of m "uninit-read" >= 0))

(* --- core dumps ----------------------------------------------------------------- *)

let image_and_core ~arch =
  let img, _ = build ~arch [ ("fib.c", Testkit.fib_c) ] in
  let proc = Link.load img in
  (img, Core.of_proc proc ~signal:5 ~code:0)

let test_core_clean () =
  List.iter
    (fun arch ->
      let img, core = image_and_core ~arch in
      match Core.of_string (Core.to_string core) with
      | Ok (co, warnings) ->
          Alcotest.(check int) (Arch.name arch ^ " no salvage") 0 (List.length warnings);
          check Alcotest.string (Arch.name arch ^ " core clean") ""
            (pp_findings (D.check_core img co))
      | Error m -> Alcotest.failf "%s: unreadable round-trip: %s" (Arch.name arch) m)
    Arch.all

let test_core_arch_mismatch () =
  let img, _ = image_and_core ~arch:Arch.Sparc in
  let _, core = image_and_core ~arch:Arch.Vax in
  expect_flagged "foreign core" F.Core_arch (D.check_core img core)

let test_core_bad_crc () =
  let img, core = image_and_core ~arch:Arch.Sparc in
  let sec = List.hd core.Core.co_sections in
  let flipped =
    patch_bytes sec.Core.sec_bytes 0
      (String.make 1 (Char.chr (Char.code sec.Core.sec_bytes.[0] lxor 0xff)))
  in
  let core' =
    { core with
      Core.co_sections =
        { sec with Core.sec_bytes = flipped } :: List.tl core.Core.co_sections }
  in
  expect_flagged "flipped byte" F.Core_crc (D.check_core img core')

let test_core_reg_width () =
  let img, core = image_and_core ~arch:Arch.Sparc in
  let core' = { core with Core.co_regs = Array.sub core.Core.co_regs 0 8 } in
  expect_flagged "truncated register file" F.Core_reg_width (D.check_core img core')

let test_core_pc_outside () =
  let img, core = image_and_core ~arch:Arch.Sparc in
  let core' = { core with Core.co_pc = Ram.Layout.data_base } in
  expect_flagged "pc in data segment" F.Core_pc (D.check_core img core')

let () =
  Alcotest.run "dbgcheck"
    [
      ( "clean",
        [ Alcotest.test_case "examples x targets: zero findings" `Quick test_clean_examples ] );
      ( "corpus",
        [
          Alcotest.test_case "overwritten nop" `Quick test_mut_bad_nop;
          Alcotest.test_case "slot re-pointed off-boundary" `Quick test_mut_misaligned_stop;
          Alcotest.test_case "nop_advance skew" `Quick test_mut_nop_advance;
          Alcotest.test_case "undecodable code" `Quick test_mut_bad_decode;
          Alcotest.test_case "renamed symtab anchor" `Quick test_mut_unresolved_anchor;
          Alcotest.test_case "anchor into code segment" `Quick test_mut_anchor_bad_segment;
          Alcotest.test_case "text/data alias" `Quick test_mut_alias_clash;
          Alcotest.test_case "dangling anchor slot" `Quick test_mut_dangling_slot;
          Alcotest.test_case "corrupted frame size" `Quick test_mut_frame_size;
          Alcotest.test_case "bad register variable" `Quick test_mut_bad_reg_var;
          Alcotest.test_case "missing RPT entry" `Quick test_mut_rpt_missing;
          Alcotest.test_case "skewed RPT entry" `Quick test_mut_rpt_skew;
          Alcotest.test_case "skewed stabs line" `Quick test_mut_stabs_line_skew;
          Alcotest.test_case "renamed stabs symbol" `Quick test_mut_stabs_name_skew;
          Alcotest.test_case "corrupt loader table" `Quick test_mut_table_error;
          Alcotest.test_case "validity: PS fact code corrupt" `Quick
            test_mut_validity_ps_bad_fact;
          Alcotest.test_case "validity: PS ranges shifted" `Quick
            test_mut_validity_ps_shifted;
          Alcotest.test_case "validity: PS ranges dropped" `Quick
            test_mut_validity_ps_dropped;
          Alcotest.test_case "validity: stabs record corrupt" `Quick
            test_mut_validity_stabs_corrupt;
          Alcotest.test_case "validity: stabs fact swapped" `Quick
            test_mut_validity_stabs_swapped;
          Alcotest.test_case "validity: stabs record dropped" `Quick
            test_mut_validity_stabs_dropped;
          Alcotest.test_case "validity: consistent scrub is unsound" `Quick
            test_mut_validity_unsound;
        ] );
      ( "clamp",
        [
          Alcotest.test_case "u16 boundary" `Quick test_clamp_boundary;
          Alcotest.test_case "end to end" `Quick test_clamp_end_to_end;
        ] );
      ( "core",
        [
          Alcotest.test_case "round-trip x targets: zero findings" `Quick test_core_clean;
          Alcotest.test_case "architecture mismatch" `Quick test_core_arch_mismatch;
          Alcotest.test_case "section CRC" `Quick test_core_bad_crc;
          Alcotest.test_case "register-file width" `Quick test_core_reg_width;
          Alcotest.test_case "fault pc outside code" `Quick test_core_pc_outside;
        ] );
      ( "format", [ Alcotest.test_case "JSON pin" `Quick test_json_pin ] );
      ( "driver", [ Alcotest.test_case "Fail/Warn/Off modes" `Quick test_driver_modes ] );
      ( "irlint",
        [
          Alcotest.test_case "uninitialized read" `Quick test_ir_uninit_read;
          Alcotest.test_case "conditional init" `Quick test_ir_conditional_init;
          Alcotest.test_case "unreachable statement" `Quick test_ir_unreachable;
          Alcotest.test_case "dead store" `Quick test_ir_dead_store;
          Alcotest.test_case "examples lint clean" `Quick test_ir_examples_clean;
          Alcotest.test_case "Fail mode" `Quick test_ir_fail_mode;
        ] );
    ]
