(** Shared helpers for the test suites: canned programs, debug-session
    construction, and qcheck generators. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host

let fib_c = {|
void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}

int main(void)
{
    fib(10);
    return 0;
}
|}

(** Build and run a program to completion, returning status and output. *)
let run_program ~arch sources =
  let img, _ = Ldb_link.Driver.build ~arch sources in
  let proc = Ldb_link.Link.load img in
  let status = Proc.run proc in
  (status, Proc.output proc)

(** Expect a clean exit and return (status, stdout). *)
let run_ok ~arch sources =
  match run_program ~arch sources with
  | Proc.Exited n, out -> (n, out)
  | Proc.Stopped (s, code), out ->
      Alcotest.failf "program stopped with %s (code %#x), output %S" (Signal.name s) code out
  | Proc.Running, out -> Alcotest.failf "program ran out of fuel, output %S" out

(** The same program must behave identically on every architecture. *)
let run_all_archs sources ~expect_status ~expect_out =
  List.iter
    (fun arch ->
      let st, out = run_ok ~arch sources in
      Alcotest.(check int) (Arch.name arch ^ " status") expect_status st;
      Alcotest.(check string) (Arch.name arch ^ " output") expect_out out)
    Arch.all

type session = {
  d : Ldb.t;
  tg : Ldb.target;
  proc : Host.process;
}

(** A connected, paused debug session for [sources]. *)
let debug_session ?debug ?defer ?compress ~arch sources : session =
  let d = Ldb.create () in
  let proc, tg =
    Host.spawn d ?debug ?defer ?compress ~arch ~name:(Arch.name arch) sources
  in
  { d; tg; proc }

(** Unwrap a run/step result; a [`Dead_process] error fails the test. *)
let ok : (Ldb.state, Ldb.dead) result -> Ldb.state = function
  | Ok st -> st
  | Error (`Dead_process m) -> Alcotest.failf "dead process: %s" m

let ok_unit : (unit, Ldb.dead) result -> unit = function
  | Ok () -> ()
  | Error (`Dead_process m) -> Alcotest.failf "dead process: %s" m

(** Continue until the nth stop (1 = first). *)
let continue_n (s : session) n =
  let rec go k last =
    if k = 0 then last
    else
      match ok (Ldb.continue_ s.d s.tg) with
      | Ldb.Stopped _ as st -> go (k - 1) st
      | st -> st
  in
  go n (Ldb.Running)

let top (s : session) = Ldb.top_frame s.d s.tg

let arch_testable = Alcotest.testable Arch.pp Arch.equal

(** qcheck: arbitrary abstract instruction (well-formed for [arch]). *)
let gen_insn (arch : Arch.t) : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let nregs = Arch.nregs arch and nfregs = Arch.nfregs arch in
  let reg = int_bound (nregs - 1) in
  let freg = int_bound (nfregs - 1) in
  let imm = map Int32.of_int (int_range (-1000000) 1000000) in
  let aluop =
    oneofl [ Insn.Add; Sub; Mul; Div; Rem; Divu; Remu; And; Or; Xor; Shl; Shr; Slt; Sltu ]
  in
  let cond = oneofl [ Insn.Eq; Ne; Lt; Le; Gt; Ge ] in
  let size = oneofl [ Insn.S8; S16; S32 ] in
  let fsize =
    if Arch.max_float_bits arch = 80 then oneofl [ Insn.F32; F64; F80 ]
    else oneofl [ Insn.F32; F64 ]
  in
  oneof
    [
      map2 (fun r v -> Insn.Li (r, v)) reg imm;
      map2 (fun a b -> Insn.Mov (a, b)) reg reg;
      (aluop >>= fun op -> map3 (fun a b c -> Insn.Alu (op, a, b, c)) reg reg reg);
      (aluop >>= fun op -> map3 (fun a b v -> Insn.Alui (op, a, b, v)) reg reg imm);
      (size >>= fun sz -> map3 (fun a b v -> Insn.Load (sz, a, b, v)) reg reg imm);
      (size >>= fun sz -> map3 (fun a b v -> Insn.Loadu (sz, a, b, v)) reg reg imm);
      (size >>= fun sz -> map3 (fun a b v -> Insn.Store (sz, a, b, v)) reg reg imm);
      (fsize >>= fun sz -> map3 (fun a b v -> Insn.Fload (sz, a, b, v)) freg reg imm);
      (fsize >>= fun sz -> map3 (fun a b v -> Insn.Fstore (sz, a, b, v)) freg reg imm);
      map3 (fun a b c -> Insn.Falu (Insn.Fadd, a, b, c)) freg freg freg;
      (cond >>= fun c -> map3 (fun r a b -> Insn.Fcmp (c, r, a, b)) reg freg freg);
      map2 (fun a b -> Insn.Fmov (a, b)) freg freg;
      map2 (fun f r -> Insn.Cvtif (f, r)) freg reg;
      map2 (fun r f -> Insn.Cvtfi (r, f)) reg freg;
      (cond >>= fun c ->
       map3 (fun a b v -> Insn.Br (c, a, b, Int32.logand v 0xffffffl)) reg reg imm);
      map (fun v -> Insn.Jmp (Int32.logand v 0xffffffl)) imm;
      map (fun r -> Insn.Jr r) reg;
      map (fun v -> Insn.Call (Int32.logand v 0xffffffl)) imm;
      map (fun r -> Insn.Callr r) reg;
      return Insn.Ret;
      map (fun r -> Insn.Push r) reg;
      map (fun r -> Insn.Pop r) reg;
      return Insn.Nop;
      return Insn.Break;
      map (fun n -> Insn.Syscall (n land 0xf)) (int_bound 15);
    ]

let qtest name ?(count = 200) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(** qcheck: arbitrary well-formed core dump — shared by the post-mortem
    and replay suites (a replay checkpoint embeds a core). *)
let core_gen : Core.t QCheck.Gen.t =
  let module Crc32 = Ldb_util.Crc32 in
  let open QCheck.Gen in
    oneofl Arch.all >>= fun arch ->
    let t = Target.of_arch arch in
    int_bound 31 >>= fun signal ->
    int_bound 0xffffff >>= fun code ->
    int_bound 0xffffff >>= fun pc ->
    int_bound 0xffffff >>= fun ctx_addr ->
    array_repeat (Target.nregs t)
      (map Int32.of_int (int_range (-0x40000000) 0x3fffffff))
    >>= fun regs ->
    oneofl [ 8; 10 ] >>= fun freg_bytes ->
    array_repeat (Target.nfregs t)
      (string_size ~gen:char (return freg_bytes))
    >>= fun fregs ->
    list_size (int_bound 4)
      ( oneofl [ "code"; "data"; "ctx"; "stack" ] >>= fun name ->
        int_bound 0x3ffff0 >>= fun base ->
        string_size ~gen:char (int_range 1 64) >>= fun bytes ->
        return
          { Core.sec_name = name; sec_base = base; sec_bytes = bytes;
            sec_crc = Crc32.string bytes; sec_ok = true } )
    >>= fun sections ->
    return
  { Core.co_arch = arch; co_signal = signal; co_code = code; co_pc = pc;
    co_ctx_addr = ctx_addr; co_regs = regs; co_freg_bytes = freg_bytes;
    co_fregs = fregs; co_sections = sections }

let gen_core : Core.t QCheck.arbitrary = QCheck.make core_gen
