(** Post-mortem debugging tests: the core-dump codec, dump production on
    fatal traps and on kill, dump-backed sessions on all four targets,
    the live-vs-post-mortem differential the feature promises (a dump
    must answer exactly like the live session it froze), salvage mode on
    truncated and corrupted dumps, and the no-trap-bytes-left-behind
    guarantee of detach and kill. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Coredump = Ldb_ldb.Coredump
module Breakpoint = Ldb_ldb.Breakpoint
module Disas = Ldb_ldb.Disas
module Crc32 = Ldb_util.Crc32

let check = Alcotest.check

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* a program that dies of SIGSEGV: the store lands far past the 4 MB
   simulated address space *)
let segv_c =
  {|
int boom(int k)
{
    static int a[4];
    a[0] = 7;
    a[k] = 1;
    return a[0];
}
int main(void)
{
    int n;
    n = 4000000;
    printf("before\n");
    boom(n);
    printf("after\n");
    return 0;
}
|}

let segv_sources = [ ("segv.c", segv_c) ]

(** Run the SIGSEGV program under a live session up to its fault. *)
let fault_session ~arch : Testkit.session =
  let s = Testkit.debug_session ~arch segv_sources in
  (match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
  | Ldb.Stopped { signal = Signal.SIGSEGV; _ } -> ()
  | _ -> Alcotest.failf "%s: program did not die of SIGSEGV" (Arch.name arch));
  s

(* --- codec ----------------------------------------------------------------- *)

let gen_core = Testkit.gen_core

let prop_codec_roundtrip =
  Testkit.qtest "random cores roundtrip" ~count:300 gen_core (fun co ->
      match Core.of_string (Core.to_string co) with
      | Ok (co', []) -> co' = co
      | Ok (_, _ :: _) | Error _ -> false)

let prop_codec_total =
  Testkit.qtest "of_string never raises" ~count:300
    QCheck.(string_gen_of_size (Gen.int_bound 600) Gen.char)
    (fun s -> match Core.of_string s with Ok _ | Error _ -> true)

(* --- dumps exist on every target ------------------------------------------- *)

let test_fault_dumps_all_archs () =
  List.iter
    (fun arch ->
      let an = Arch.name arch in
      let s = fault_session ~arch in
      let co = Ldb.fetch_core s.Testkit.tg in
      check Testkit.arch_testable (an ^ " arch") arch co.Core.co_arch;
      check Alcotest.int (an ^ " signal") (Signal.number Signal.SIGSEGV)
        co.Core.co_signal;
      List.iter
        (fun name ->
          if
            not
              (List.exists
                 (fun sec -> sec.Core.sec_name = name && sec.Core.sec_ok)
                 co.Core.co_sections)
          then Alcotest.failf "%s: dump has no intact %S section" an name)
        [ "code"; "data"; "ctx"; "stack" ];
      (* the dump names a pc inside the code segment *)
      check Alcotest.bool (an ^ " pc in code") true
        (co.Core.co_pc >= Ram.Layout.code_base
        && co.Core.co_pc < Ram.Layout.data_base))
    Arch.all

(* --- the live-vs-post-mortem differential ---------------------------------- *)

(** Everything a session would tell a user at the fault, as strings. *)
type answers = {
  a_where : string;
  a_backtrace : string list;
  a_k : string;  (** boom's parameter, top frame *)
  a_n : string;  (** main's local, next frame *)
  a_disas : string;
}

let answers d tg : answers =
  let frames = Ldb.backtrace d tg in
  let top = List.hd frames in
  {
    a_where = Ldb.where d tg;
    a_backtrace = List.map (Ldb.frame_function d tg) frames;
    a_k = Ldb.print_value d tg top "k";
    a_n = Ldb.print_value d tg (List.nth frames 1) "n";
    a_disas =
      Disas.to_string (Ldb.disassemble d tg ~addr:top.Ldb_ldb.Frame.fr_pc ~count:6);
  }

let postmortem_of (s : Testkit.session) : Ldb.t * Ldb.target =
  let bytes = Ldb.core_bytes s.Testkit.tg in
  let d2 = Ldb.create () in
  match Core.of_string bytes with
  | Error m -> Alcotest.failf "core does not decode: %s" m
  | Ok loaded ->
      let tg2 =
        Ldb.connect_core d2 ~name:"core"
          ~loader_ps:s.Testkit.proc.Host.hp_loader_ps loaded
      in
      (d2, tg2)

let test_live_vs_postmortem () =
  List.iter
    (fun arch ->
      let an = Arch.name arch in
      let s = fault_session ~arch in
      let live = answers s.Testkit.d s.Testkit.tg in
      let d2, tg2 = postmortem_of s in
      check Alcotest.bool (an ^ " is postmortem") true (Ldb.is_postmortem tg2);
      check Alcotest.(list string) (an ^ " no salvage") [] (Ldb.take_salvage tg2);
      let dead = answers d2 tg2 in
      check Alcotest.string (an ^ " where") live.a_where dead.a_where;
      check Alcotest.(list string) (an ^ " backtrace") live.a_backtrace dead.a_backtrace;
      check Alcotest.string (an ^ " k") live.a_k dead.a_k;
      check Alcotest.string (an ^ " n") live.a_n dead.a_n;
      check Alcotest.string (an ^ " disas") live.a_disas dead.a_disas)
    Arch.all

(** A dead process answers queries but refuses to run, step or store. *)
let test_dead_process_is_typed () =
  let s = fault_session ~arch:Arch.Mips in
  let d2, tg2 = postmortem_of s in
  let expect_dead what = function
    | Error (`Dead_process _) -> ()
    | Ok _ -> Alcotest.failf "%s succeeded on a core dump" what
  in
  expect_dead "continue" (Ldb.continue_ d2 tg2);
  expect_dead "step" (Ldb.step_instruction d2 tg2);
  expect_dead "assign"
    (Ldb.assign_int d2 tg2 (Ldb.top_frame d2 tg2) "k" 1);
  (match Ldb.break_function d2 tg2 "main" with
  | exception Ldb.Error _ -> ()
  | _ -> Alcotest.fail "breakpoint planted in a core dump")

(* --- kill and the on-demand dump ------------------------------------------- *)

(** Kill leaves a dump behind: the nub snapshots the stop before dying,
    and the debugger can still pull it across and open it. *)
let test_kill_leaves_a_core () =
  let s = Testkit.debug_session ~arch:Arch.Sparc segv_sources in
  let d = s.Testkit.d and tg = s.Testkit.tg in
  ignore (Ldb.break_function d tg "boom" : int);
  (match Testkit.ok (Ldb.continue_ d tg) with
  | Ldb.Stopped { signal = Signal.SIGTRAP; _ } -> ()
  | _ -> Alcotest.fail "no stop at the breakpoint");
  let live_bt = List.map (Ldb.frame_function d tg) (Ldb.backtrace d tg) in
  Ldb.kill tg;
  (match tg.Ldb.tg_state with
  | Ldb.Exited 137 -> ()
  | _ -> Alcotest.fail "kill did not mark the target exited");
  let d2, tg2 = postmortem_of s in
  check Alcotest.(list string) "backtrace survives the kill" live_bt
    (List.map (Ldb.frame_function d2 tg2) (Ldb.backtrace d2 tg2))

(* --- detach and kill leave no trap bytes ----------------------------------- *)

let code_bytes (s : Testkit.session) addr len =
  String.init len (fun i ->
      Char.chr (Ram.get_u8 s.Testkit.proc.Host.hp_proc.Proc.ram (addr + i)))

let test_release_unplants () =
  List.iter
    (fun release ->
      let s = Testkit.debug_session ~arch:Arch.Vax [ ("fib.c", Testkit.fib_c) ] in
      let d = s.Testkit.d and tg = s.Testkit.tg in
      let addr = Ldb.break_function d tg "fib" in
      (match Testkit.ok (Ldb.continue_ d tg) with
      | Ldb.Stopped _ -> ()
      | _ -> Alcotest.fail "no stop");
      let t = tg.Ldb.tg_tdesc in
      check Alcotest.string "trap planted" t.Target.brk
        (code_bytes s addr (String.length t.Target.brk));
      (match release with
      | `Detach -> Ldb.detach tg
      | `Kill -> Ldb.kill tg);
      (* the released target's memory holds its own instruction again *)
      check Alcotest.string "no trap bytes left" t.Target.nop
        (code_bytes s addr (String.length t.Target.nop)))
    [ `Detach; `Kill ]

(** Detach suspends breakpoints; reattach replants them and the session
    keeps working (while a breakpoint the user removed stays removed). *)
let test_detach_suspends_reattach_replants () =
  let s = Testkit.debug_session ~arch:Arch.Mips [ ("fib.c", Testkit.fib_c) ] in
  let d = s.Testkit.d and tg = s.Testkit.tg in
  let addr = Ldb.break_function d tg "fib" in
  Ldb.detach tg;
  let t = tg.Ldb.tg_tdesc in
  check Alcotest.string "unplanted while detached" t.Target.nop
    (code_bytes s addr (String.length t.Target.nop));
  (match Host.reattach d tg s.Testkit.proc with
  | Ldb.Stopped _ -> ()
  | _ -> Alcotest.fail "reattach failed");
  check Alcotest.string "replanted on reattach" t.Target.brk
    (code_bytes s addr (String.length t.Target.brk));
  (match Testkit.ok (Ldb.continue_ d tg) with
  | Ldb.Stopped _ -> ()
  | _ -> Alcotest.fail "replanted breakpoint did not fire");
  Ldb.clear_breakpoint tg ~addr;
  Ldb.detach tg;
  (match Host.reattach d tg s.Testkit.proc with
  | Ldb.Stopped _ -> ()
  | _ -> Alcotest.fail "second reattach failed");
  (* the removed breakpoint must not come back *)
  check Alcotest.string "cleared breakpoint stays cleared" t.Target.nop
    (code_bytes s addr (String.length t.Target.nop));
  match Testkit.ok (Ldb.continue_ d tg) with
  | Ldb.Exited 0 -> ()
  | _ -> Alcotest.fail "no clean exit"

(* --- salvage mode ---------------------------------------------------------- *)

let flip_first s =
  let b = Bytes.of_string s in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  Bytes.to_string b

(** Re-serialize [co] with one section's bytes corrupted but its stored
    CRC intact, as if the dump was damaged at rest. *)
let corrupt_section name (co : Core.t) : string =
  let hit = ref false in
  let sections =
    List.map
      (fun sec ->
        if sec.Core.sec_name = name then begin
          hit := true;
          { sec with Core.sec_bytes = flip_first sec.Core.sec_bytes }
        end
        else sec)
      co.Core.co_sections
  in
  if not !hit then Alcotest.failf "dump has no %S section" name;
  Core.to_string { co with Core.co_sections = sections }

let test_corrupt_data_section_salvages () =
  List.iter
    (fun arch ->
      let an = Arch.name arch in
      let s = fault_session ~arch in
      let damaged = corrupt_section "data" (Ldb.fetch_core s.Testkit.tg) in
      let co, warnings =
        match Core.of_string damaged with
        | Ok r -> r
        | Error m -> Alcotest.failf "%s: corrupt section rejected the dump: %s" an m
      in
      (match warnings with
      | [ Core.Bad_crc { section = "data"; _ } ] -> ()
      | ws ->
          Alcotest.failf "%s: expected one data Bad_crc, got: %s" an
            (String.concat "; " (List.map Core.salvage_to_string ws)));
      let d2 = Ldb.create () in
      let tg2 =
        Ldb.connect_core d2 ~name:"damaged"
          ~loader_ps:s.Testkit.proc.Host.hp_loader_ps (co, warnings)
      in
      (* the report degrades, it does not abort *)
      (match Ldb.crash_report d2 tg2 with
      | `Full _ -> Alcotest.failf "%s: damaged dump reported as Full" an
      | `Salvage r ->
          check Alcotest.bool (an ^ " registers survive") true (r.Ldb.cr_regs <> []);
          check Alcotest.(list string) (an ^ " backtrace survives")
            [ "boom"; "main" ]
            (List.map (fun f -> f.Ldb.fl_func) r.Ldb.cr_frames);
          let rendered = Ldb.render_crash_report r in
          check Alcotest.bool (an ^ " report names the damage") true
            (contains ~needle:"data" rendered
            || List.exists
                 (fun n ->
                   match n with Ldb.Dump_note (Core.Bad_crc _) -> true | _ -> false)
                 r.Ldb.cr_notes));
      (* a print that touches the damaged section answers, with a warning *)
      let top = Ldb.top_frame d2 tg2 in
      ignore (Ldb.print_value d2 tg2 top "a" : string);
      match Ldb.take_salvage tg2 with
      | [] -> Alcotest.failf "%s: damaged read produced no salvage warning" an
      | w :: _ ->
          check Alcotest.bool (an ^ " warning names the section") true
            (contains ~needle:"data" w))
    Arch.all

let test_truncated_dump_salvages () =
  let s = fault_session ~arch:Arch.M68k in
  let whole = Ldb.core_bytes s.Testkit.tg in
  (* cut the dump off mid-body: headers survive, some sections do not *)
  let cut = String.sub whole 0 (String.length whole * 3 / 5) in
  let co, warnings =
    match Core.of_string cut with
    | Ok r -> r
    | Error m -> Alcotest.failf "truncated dump rejected outright: %s" m
  in
  if not (List.exists (function Core.Truncated _ -> true | _ -> false) warnings)
  then Alcotest.fail "no Truncated warning for a cut dump";
  check Alcotest.int "fault identity survives truncation"
    (Signal.number Signal.SIGSEGV) co.Core.co_signal;
  let d2 = Ldb.create () in
  let tg2 =
    Ldb.connect_core d2 ~name:"cut" ~loader_ps:s.Testkit.proc.Host.hp_loader_ps
      (co, warnings)
  in
  match Ldb.crash_report d2 tg2 with
  | `Full _ -> Alcotest.fail "truncated dump reported as Full"
  | `Salvage r ->
      check Alcotest.bool "registers recovered" true (r.Ldb.cr_regs <> []);
      if not (List.exists (function Ldb.Dump_note _ -> true | _ -> false) r.Ldb.cr_notes)
      then Alcotest.fail "report carries no dump note"

(** A dump too short for even the header is an error, not a session. *)
let test_hopeless_dump_is_an_error () =
  let s = fault_session ~arch:Arch.Vax in
  let whole = Ldb.core_bytes s.Testkit.tg in
  (match Core.of_string (String.sub whole 0 6) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "6 bytes accepted as a core");
  match Core.of_string ("XXXXXXXX" ^ String.sub whole 8 64) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted"

let () =
  Alcotest.run "core"
    [
      ( "codec",
        [ prop_codec_roundtrip; prop_codec_total;
          Alcotest.test_case "hopeless dumps rejected" `Quick
            test_hopeless_dump_is_an_error ] );
      ( "dumps",
        [ Alcotest.test_case "fault dumps on all targets" `Quick
            test_fault_dumps_all_archs;
          Alcotest.test_case "kill leaves a core" `Quick test_kill_leaves_a_core ] );
      ( "postmortem",
        [ Alcotest.test_case "live = post-mortem on all targets" `Quick
            test_live_vs_postmortem;
          Alcotest.test_case "dead process errors are typed" `Quick
            test_dead_process_is_typed ] );
      ( "release",
        [ Alcotest.test_case "detach/kill leave no trap bytes" `Quick
            test_release_unplants;
          Alcotest.test_case "detach suspends, reattach replants" `Quick
            test_detach_suspends_reattach_replants ] );
      ( "salvage",
        [ Alcotest.test_case "corrupt data section degrades" `Quick
            test_corrupt_data_section_salvages;
          Alcotest.test_case "truncated dump degrades" `Quick
            test_truncated_dump_salvages ] );
    ]
