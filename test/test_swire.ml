(** Wire-codec tests for the server front end: the decoders are total
    (arbitrary bytes yield typed errors, never exceptions), every
    command/reply/refusal constructor survives a round trip through its
    frame, the scanner makes progress on any input (no byte stream can
    wedge it), and a frame torn at {e every} byte boundary is resynced
    past, recovering the intact frame behind it. *)

open Ldb_machine
module Swire = Ldb_ldb.Swire
module Server = Ldb_ldb.Server
module Ldb = Ldb_ldb.Ldb

let check = Alcotest.check

(* --- generators --------------------------------------------------------- *)

let gen_name = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 12))

let gen_command : Server.command QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun f -> Server.Break_function f) gen_name;
      ( opt gen_name >>= fun file ->
        int_bound 9999 >>= fun line -> return (Server.Break_line { file; line }) );
      ( int_bound 0xffffff >>= fun addr ->
        gen_name >>= fun cond -> return (Server.Condition { addr; cond }) );
      return Server.Continue;
      return Server.Step_source;
      return Server.Where;
      return Server.Backtrace;
      map (fun v -> Server.Print v) gen_name;
      map (fun v -> Server.Read_int v) gen_name;
      return Server.Fetch_core;
      return Server.Detach;
      return Server.Kill;
    ]

let gen_state : Ldb.state QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      return Ldb.Running;
      ( oneofl
          [ Signal.SIGTRAP; Signal.SIGSEGV; Signal.SIGFPE; Signal.SIGILL;
            Signal.SIGABRT; Signal.SIGINT ]
        >>= fun signal ->
        int_bound 0xffffff >>= fun code ->
        int_bound 0xffffff >>= fun ctx_addr ->
        return (Ldb.Stopped { signal; code; ctx_addr }) );
      map (fun n -> Ldb.Exited n) (int_range (-128) 255);
      return Ldb.Detached;
    ]

let gen_reply : Server.reply QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      return Server.R_unit;
      map (fun a -> Server.R_addr a) (int_bound 0xffffff);
      map (fun l -> Server.R_addrs l) (list_size (int_bound 8) (int_bound 0xffffff));
      map (fun st -> Server.R_state st) gen_state;
      map (fun t -> Server.R_text t) (string_size ~gen:printable (int_bound 200));
      map (fun n -> Server.R_int n) (int_range (-0x40000000) 0x3fffffff);
      map (fun co -> Server.R_core co) Testkit.core_gen;
    ]

let gen_refusal : Server.refusal QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun id -> Server.No_such_session id) (int_bound 9999);
      map (fun id -> Server.Session_closed id) (int_bound 9999);
      ( gen_name >>= fun reason ->
        bool >>= fun salvaged -> return (Server.Session_down { reason; salvaged }) );
      map (fun m -> Server.Overloaded m) gen_name;
      map (fun m -> Server.Failed m) gen_name;
    ]

let gen_client_msg : Swire.client_msg QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      return (Swire.C_hello { magic = Swire.version_magic });
      map (fun c -> Swire.C_cmd c) gen_command;
      return Swire.C_bye;
    ]

let gen_server_msg : Swire.server_msg QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun s -> Swire.S_hello { session = s }) (int_bound 9999);
      map (fun r -> Swire.S_reply r) gen_reply;
      map (fun r -> Swire.S_refused r) gen_refusal;
      map (fun m -> Swire.S_error m) gen_name;
      map (fun m -> Swire.S_bye m) gen_name;
    ]

let gen_bytes = QCheck.(string_gen_of_size (Gen.int_bound 300) Gen.char)

(* --- totality ------------------------------------------------------------ *)

let prop_decode_client_total =
  Testkit.qtest "decode_client never raises" ~count:500 gen_bytes (fun s ->
      match Swire.decode_client s with Ok _ | Error _ -> true)

let prop_decode_server_total =
  Testkit.qtest "decode_server never raises" ~count:500 gen_bytes (fun s ->
      match Swire.decode_server s with Ok _ | Error _ -> true)

(** The scanner is total {e and} makes progress: on any buffer it either
    wants more bytes, consumes a frame, or skips at least one byte — so a
    receive loop can never spin on a poisoned buffer. *)
let prop_scan_progress =
  Testkit.qtest "scan never raises and always progresses" ~count:500 gen_bytes
    (fun s ->
      match Swire.scan s with
      | Swire.S_need -> true
      | Swire.S_frame { used; _ } -> used > 0 && used <= String.length s
      | Swire.S_skip { skip; _ } -> skip > 0 && skip <= String.length s)

(* --- round trips --------------------------------------------------------- *)

let prop_client_roundtrip =
  Testkit.qtest "client messages roundtrip" ~count:500 (QCheck.make gen_client_msg)
    (fun m ->
      match Swire.decode_client (Swire.encode_client m) with
      | Ok m' -> m' = m
      | Error _ -> false)

let prop_server_roundtrip =
  Testkit.qtest "server messages roundtrip" ~count:300 (QCheck.make gen_server_msg)
    (fun m ->
      match Swire.decode_server (Swire.encode_server m) with
      | Ok m' -> m' = m
      | Error _ -> false)

let prop_framed_roundtrip =
  Testkit.qtest "sealed frames scan back out" ~count:300
    (QCheck.make QCheck.Gen.(pair (int_bound 0xffffff) gen_client_msg))
    (fun (seq, m) ->
      let frame = Swire.seal ~seq (Swire.encode_client m) in
      match Swire.scan frame with
      | Swire.S_frame { seq = seq'; payload; used } ->
          seq' = seq
          && used = String.length frame
          && Swire.decode_client payload = Ok m
      | _ -> false)

(* --- resync -------------------------------------------------------------- *)

(** Drive a receive loop over a static buffer the way {!Evloop} does:
    consume frames and skips; a stuck partial frame gets the
    read-deadline treatment ([force_resync]).  Returns the decoded
    client messages, in order. *)
let drain_buffer (buf : string) : Swire.client_msg list =
  let buf = ref buf in
  let out = ref [] in
  let stuck = ref false in
  while not !stuck do
    match Swire.scan !buf with
    | Swire.S_frame { payload; used; _ } ->
        buf := String.sub !buf used (String.length !buf - used);
        (match Swire.decode_client payload with
        | Ok m -> out := m :: !out
        | Error _ -> ())
    | Swire.S_skip { skip; _ } ->
        buf := String.sub !buf skip (String.length !buf - skip)
    | Swire.S_need ->
        if String.length !buf = 0 then stuck := true
        else begin
          (* no more bytes are coming: this is the torn-frame stall the
             loop answers with a forced resync *)
          let next = Swire.force_resync !buf in
          if next = !buf then stuck := true;
          buf := next
        end
  done;
  List.rev !out

(** A frame torn at every possible byte boundary, followed by an intact
    frame: the scanner must always recover the survivor, whatever the
    tear left behind. *)
let torn_at_every_offset_case () =
  let torn_msg = Swire.C_cmd (Server.Print "torn_casualty") in
  let survivor_msg = Swire.C_cmd (Server.Break_function "survivor") in
  let torn = Swire.seal ~seq:7 (Swire.encode_client torn_msg) in
  let survivor = Swire.seal ~seq:8 (Swire.encode_client survivor_msg) in
  for cut = 0 to String.length torn - 1 do
    let buf = String.sub torn 0 cut ^ survivor in
    let got = drain_buffer buf in
    if not (List.mem survivor_msg got) then
      Alcotest.failf "tear at offset %d lost the intact frame behind it" cut
  done;
  (* and the whole frame, untorn, still arrives alongside *)
  check Alcotest.int "untorn control: both frames decode" 2
    (List.length (drain_buffer (torn ^ survivor)))

(** Garbage of every flavor before a frame: scanned past, typed, frame
    recovered. *)
let garbage_prefix_case () =
  let msg = Swire.C_cmd Server.Continue in
  let frame = Swire.seal ~seq:1 (Swire.encode_client msg) in
  List.iter
    (fun junk ->
      let got = drain_buffer (junk ^ frame) in
      if got <> [ msg ] then
        Alcotest.failf "garbage prefix %S did not resync to the frame" junk)
    [
      "x";
      "garbage bytes";
      "\xf5";  (* a lone magic-0 *)
      "\xf5\x00";  (* magic-0 followed by a non-magic-1 *)
      String.make 40 '\xf5';  (* a wall of false frame starts *)
      "\x00\x00\x00\x00\x00\x00\x00\x00";
    ]

(** A corrupted frame (bit flip anywhere in header or payload) never
    decodes as something else: it is skipped with a typed error, and a
    clean frame after it still arrives. *)
let corrupt_frame_case () =
  let msg = Swire.C_cmd (Server.Read_int "x") in
  let frame = Swire.seal ~seq:3 (Swire.encode_client msg) in
  let clean_msg = Swire.C_cmd Server.Where in
  let clean = Swire.seal ~seq:4 (Swire.encode_client clean_msg) in
  for i = 0 to String.length frame - 1 do
    let corrupt = Bytes.of_string frame in
    Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0x10));
    let got = drain_buffer (Bytes.to_string corrupt ^ clean) in
    (* the corrupted copy may survive only if the flip missed every
       checked byte (impossible: CRC covers seq, len and payload, and the
       magic is matched) — so either it was dropped and the clean frame
       arrived, or the flip hit the gap between frames (no such gap) *)
    if not (List.mem clean_msg got) then
      Alcotest.failf "bit flip at %d lost the clean frame behind it" i;
    if List.length got > 2 then Alcotest.failf "bit flip at %d duplicated frames" i
  done

(** The error renderer holds up its end of "typed": every error has a
    readable rendering. *)
let error_render_case () =
  List.iter
    (fun e -> check Alcotest.bool "renders" true (String.length (Swire.error_to_string e) > 0))
    [
      Swire.Garbage 3;
      Swire.Bad_length { seq = 1; claimed = 1 lsl 30; limit = Swire.max_client_payload };
      Swire.Bad_crc { seq = 2 };
      Swire.Bad_message "mystery opcode";
    ]

let () =
  Alcotest.run "swire"
    [
      ( "total",
        [ prop_decode_client_total; prop_decode_server_total; prop_scan_progress ] );
      ( "roundtrip",
        [ prop_client_roundtrip; prop_server_roundtrip; prop_framed_roundtrip ] );
      ( "resync",
        [
          Alcotest.test_case "torn frame at every offset" `Quick torn_at_every_offset_case;
          Alcotest.test_case "garbage prefixes" `Quick garbage_prefix_case;
          Alcotest.test_case "corrupt frame then clean frame" `Quick corrupt_frame_case;
          Alcotest.test_case "errors render" `Quick error_render_case;
        ] );
    ]
