(** The wire front end under test: admission control, handshake policing,
    slowloris quarantine, half-open reaping into core salvage, deficit
    round-robin fairness, graceful drain — and the acceptance criterion
    made executable, a seeded 64-client chaos soak where a hostile subset
    spews garbage, tears frames, stalls, disconnects mid-command and
    reconnect-storms, while every healthy client must read a transcript
    byte-identical to a single-client run and the server must survive to
    drain within its deadline.

    Clients here are little state machines over the {e client} end of a
    sim link, speaking real frames through {!Swire} — nothing reaches the
    server except bytes, exactly as over a socket. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Host = Ldb_ldb.Host
module Server = Ldb_ldb.Server
module Swire = Ldb_ldb.Swire
module Evloop = Ldb_ldb.Evloop
module Chan = Ldb_nub.Chan
module Faultchan = Ldb_nub.Faultchan

let check = Alcotest.check
let fib_sources = [ ("fib.c", Testkit.fib_c) ]

(* a program that dies on a fatal signal, for the salvage paths *)
let segv_sources =
  [
    ( "segv.c",
      {|
int boom(int k)
{
    static int a[4];
    a[k] = 1;
    return a[0];
}
int main(void)
{
    int n;
    n = 4000000;
    boom(n);
    return 0;
}
|}
    );
  ]

(* --- a scripted wire client --------------------------------------------------- *)

type client = {
  cl_ep : Chan.endpoint;
  cl_fc : Faultchan.t option;
  mutable cl_rx : string;
  mutable cl_seq : int;
  mutable cl_transcript : string list;  (** rendered server messages, newest first *)
  mutable cl_script : Server.command list;
  mutable cl_awaiting : bool;
  mutable cl_wait : int;  (** ticks spent awaiting the current reply *)
  mutable cl_bye_sent : bool;
  mutable cl_done : bool;
}

let make_client ?fc ep script =
  {
    cl_ep = ep;
    cl_fc = fc;
    cl_rx = "";
    cl_seq = 0;
    cl_transcript = [];
    cl_script = script;
    cl_awaiting = false;
    cl_wait = 0;
    cl_bye_sent = false;
    cl_done = false;
  }

let client_send (cl : client) (m : Swire.client_msg) : unit =
  let frame = Swire.seal ~seq:cl.cl_seq (Swire.encode_client m) in
  cl.cl_seq <- cl.cl_seq + 1;
  try Chan.send cl.cl_ep frame with Chan.Disconnected -> cl.cl_done <- true

let client_send_raw (cl : client) (bytes : string) : unit =
  try Chan.send cl.cl_ep bytes with Chan.Disconnected -> cl.cl_done <- true

(** Read and decode every server message waiting on the client's end. *)
let client_recv (cl : client) : Swire.server_msg list =
  (* age faultchan stalls (and exercise the wrapped pump path) *)
  (match cl.cl_fc with Some _ -> (Chan.pump_of cl.cl_ep) () | None -> ());
  let n = Chan.available cl.cl_ep in
  if n > 0 then begin
    cl.cl_rx <- cl.cl_rx ^ Chan.peek cl.cl_ep n;
    Chan.skip cl.cl_ep n
  end;
  let out = ref [] in
  let stop = ref false in
  while not !stop do
    match Swire.scan ~max_payload:Swire.max_server_payload cl.cl_rx with
    | Swire.S_frame { payload; used; _ } -> (
        cl.cl_rx <- String.sub cl.cl_rx used (String.length cl.cl_rx - used);
        match Swire.decode_server payload with
        | Ok m -> out := m :: !out
        | Error _ -> ())
    | Swire.S_skip { skip; _ } ->
        cl.cl_rx <- String.sub cl.cl_rx skip (String.length cl.cl_rx - skip)
    | Swire.S_need -> stop := true
  done;
  List.rev !out

(** One step of a well-behaved client: consume replies, send the next
    command when the previous one answered, say goodbye when the script
    is done, give up on a wire that stopped answering. *)
let step_healthy (cl : client) : unit =
  if not cl.cl_done then begin
    List.iter
      (fun m ->
        cl.cl_transcript <- Swire.server_msg_to_string m :: cl.cl_transcript;
        match m with
        | Swire.S_hello _ -> cl.cl_awaiting <- false
        | Swire.S_reply _ | Swire.S_refused _ ->
            cl.cl_awaiting <- false;
            cl.cl_wait <- 0
        | Swire.S_error _ -> ()
        | Swire.S_bye _ -> cl.cl_done <- true)
      (client_recv cl);
    if not cl.cl_done then
      if cl.cl_awaiting then begin
        cl.cl_wait <- cl.cl_wait + 1;
        if cl.cl_wait > 60 then begin
          (* the wire ate the command or its reply: stop waiting *)
          cl.cl_done <- true;
          try Chan.disconnect cl.cl_ep with _ -> ()
        end
      end
      else
        match cl.cl_script with
        | cmd :: rest ->
            cl.cl_script <- rest;
            cl.cl_awaiting <- true;
            cl.cl_wait <- 0;
            client_send cl (Swire.C_cmd cmd)
        | [] ->
            if not cl.cl_bye_sent then begin
              cl.cl_bye_sent <- true;
              client_send cl Swire.C_bye
            end
  end

(** The reply/refusal lines of a transcript — what must be byte-identical
    across healthy clients (hello carries the session id, bye the close
    reason; neither is part of the answers). *)
let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let answers (cl : client) : string list =
  List.filter
    (fun l -> has_prefix "ok: " l || has_prefix "refused: " l)
    (List.rev cl.cl_transcript)

let typed_lines (cl : client) : string list =
  List.filter
    (fun l ->
      has_prefix "bye:" l || has_prefix "protocol " l || has_prefix "refused: " l)
    (List.rev cl.cl_transcript)

(* --- harness ------------------------------------------------------------------ *)

let soak_script =
  [
    Server.Break_function "fib";
    Server.Continue;
    Server.Read_int "n";
    Server.Print "n";
    Server.Backtrace;
    Server.Continue;
  ]

(** A loop whose binder launches a fresh process of an image chosen per
    connection; [arch_of_conn] decides which. *)
let make_loop ?limits ~(images : (Ldb_link.Link.image * string) array)
    ~(arch_of_conn : (int, int) Hashtbl.t) () : Evloop.t =
  let sv =
    Server.create
      ~limits:{ Server.default_limits with Server.li_max_sessions = 256 }
      ()
  in
  Evloop.create ?limits sv ~bind:(fun ~conn_id ->
      let ix = match Hashtbl.find_opt arch_of_conn conn_id with Some i -> i | None -> 0 in
      let p = Host.launch_image images.(ix) in
      Server.open_session sv
        ~name:(Printf.sprintf "conn-%d" conn_id)
        ~loader_ps:p.Host.hp_loader_ps (Host.open_channel p))

(** Connect one client to the loop, registering its arch for the binder. *)
let connect ?fault ?(arch_ix = 0) (loop : Evloop.t)
    (arch_of_conn : (int, int) Hashtbl.t) (script : Server.command list) :
    client * [ `Conn of int | `Refused ] =
  let ep, io, fc = Evloop.sim_link ?fault () in
  let res = Evloop.accept loop io in
  (match res with
  | `Conn id -> Hashtbl.replace arch_of_conn id arch_ix
  | `Refused -> ());
  (make_client ?fc ep script, res)

let conn_exn = function
  | `Conn id -> id
  | `Refused -> Alcotest.fail "connection unexpectedly refused"

(** Drive a set of per-tick client steps against the loop until they all
    report done (or [max_ticks] passes). *)
let run_clients (loop : Evloop.t) (steps : (unit -> bool) list) ~(max_ticks : int) :
    int =
  let ticks = ref 0 in
  let live = ref steps in
  while !live <> [] && !ticks < max_ticks do
    live := List.filter (fun step -> step ()) !live;
    Evloop.tick loop;
    incr ticks
  done;
  !ticks

let single_arch_images arch = [| Host.build_image ~arch fib_sources |]

(** The reference transcript: one healthy client, clean link, otherwise
    the same loop machinery. *)
let wire_baseline ~(images : (Ldb_link.Link.image * string) array) ~(arch_ix : int) :
    string list =
  let arch_of_conn = Hashtbl.create 4 in
  let loop = make_loop ~images ~arch_of_conn () in
  let cl, res = connect ~arch_ix loop arch_of_conn soak_script in
  ignore (conn_exn res);
  client_send cl (Swire.C_hello { magic = Swire.version_magic });
  cl.cl_awaiting <- true;
  let ticks =
    run_clients loop
      [ (fun () -> step_healthy cl; not cl.cl_done) ]
      ~max_ticks:500
  in
  if cl.cl_done = false then Alcotest.failf "baseline client unfinished after %d ticks" ticks;
  answers cl

(* --- focused robustness tests ------------------------------------------------- *)

(** Admission control: past the cap, a connection is refused with a typed
    [Overloaded] frame before any handshake work; the same once draining. *)
let test_admission_cap () =
  let images = single_arch_images Arch.Mips in
  let arch_of_conn = Hashtbl.create 4 in
  let limits = { Evloop.default_limits with Evloop.el_max_conns = 2 } in
  let loop = make_loop ~limits ~images ~arch_of_conn () in
  let _cl1, r1 = connect loop arch_of_conn [] in
  let _cl2, r2 = connect loop arch_of_conn [] in
  ignore (conn_exn r1);
  ignore (conn_exn r2);
  let cl3, r3 = connect loop arch_of_conn [] in
  (match r3 with
  | `Refused -> ()
  | `Conn _ -> Alcotest.fail "third connection should have been refused");
  (match client_recv cl3 with
  | [ Swire.S_refused (Server.Overloaded _) ] -> ()
  | ms -> Alcotest.failf "expected one typed Overloaded, got %d messages" (List.length ms));
  check Alcotest.bool "refused connection is closed" false (Chan.is_connected cl3.cl_ep);
  let st = Evloop.stats loop in
  check Alcotest.int "refusal counted" 1 st.Evloop.es_refused_admission;
  check Alcotest.int "no session was opened for it" 0
    (Server.stats (Evloop.server loop)).Server.sv_opened;
  (* draining refuses even below the cap *)
  Evloop.begin_drain loop;
  let cl4, r4 = connect loop arch_of_conn [] in
  (match r4 with
  | `Refused -> ()
  | `Conn _ -> Alcotest.fail "draining server should refuse admission");
  match client_recv cl4 with
  | [ Swire.S_refused (Server.Overloaded m) ] ->
      check Alcotest.bool "refusal names the drain" true
        (String.length m >= 5 && String.sub m 0 5 = "serve")
  | ms -> Alcotest.failf "expected one typed refusal, got %d messages" (List.length ms)

(** The handshake is policed: a wrong version magic and a command before
    hello both earn a typed error and a closed connection — no session is
    ever bound. *)
let test_handshake_policing () =
  let images = single_arch_images Arch.Mips in
  let arch_of_conn = Hashtbl.create 4 in
  let loop = make_loop ~images ~arch_of_conn () in
  let bad_version, r1 = connect loop arch_of_conn [] in
  ignore (conn_exn r1);
  client_send bad_version (Swire.C_hello { magic = "LDBSRV0" });
  let impatient, r2 = connect loop arch_of_conn [] in
  ignore (conn_exn r2);
  client_send impatient (Swire.C_cmd Server.Continue);
  Evloop.tick loop;
  (match client_recv bad_version with
  | [ Swire.S_error m ] ->
      check Alcotest.bool "error names the version" true
        (String.length m > 0 && Chan.is_connected bad_version.cl_ep = false)
  | ms -> Alcotest.failf "bad version: expected one typed error, got %d" (List.length ms));
  (match client_recv impatient with
  | [ Swire.S_error _ ] ->
      check Alcotest.bool "closed after command-before-hello" false
        (Chan.is_connected impatient.cl_ep)
  | ms -> Alcotest.failf "no hello: expected one typed error, got %d" (List.length ms));
  check Alcotest.int "no session was ever opened" 0
    (Server.stats (Evloop.server loop)).Server.sv_opened

(** Slowloris: a client dribbling a frame slower than the read deadline
    earns strikes and is quarantined with a typed goodbye; its session is
    released cleanly. *)
let test_slowloris_quarantine () =
  let images = single_arch_images Arch.Mips in
  let arch_of_conn = Hashtbl.create 4 in
  let limits =
    { Evloop.default_limits with Evloop.el_read_deadline = 3; el_max_strikes = 2 }
  in
  let loop = make_loop ~limits ~images ~arch_of_conn () in
  let cl, r = connect loop arch_of_conn [] in
  ignore (conn_exn r);
  client_send cl (Swire.C_hello { magic = Swire.version_magic });
  Evloop.tick loop;
  let sid =
    match client_recv cl with
    | [ Swire.S_hello { session } ] -> session
    | ms -> Alcotest.failf "expected hello, got %d messages" (List.length ms)
  in
  (* the slowloris signature: frame headers whose promised payloads never
     come, parked on the wire slower than the read deadline *)
  let frame = Swire.seal ~seq:99 (Swire.encode_client (Swire.C_cmd Server.Where)) in
  let header = String.sub frame 0 Swire.header_len in
  let quarantined = ref false in
  let ticks = ref 0 in
  while (not !quarantined) && !ticks < 100 do
    incr ticks;
    if !ticks mod 8 = 1 then client_send_raw cl header;
    Evloop.tick loop;
    List.iter
      (fun m -> match m with Swire.S_bye _ -> quarantined := true | _ -> ())
      (client_recv cl)
  done;
  check Alcotest.bool "slowloris got a typed goodbye" true !quarantined;
  check Alcotest.int "quarantine counted" 1 (Evloop.stats loop).Evloop.es_quarantined;
  match Server.session_state (Evloop.server loop) sid with
  | Some Server.Closed -> ()
  | st ->
      Alcotest.failf "session should be closed, is %s"
        (match st with Some s -> Server.state_name s | None -> "gone")

(** Half-open reaping: a client that goes silent without disconnecting is
    reaped after the idle timeout, and its session goes down the salvage
    path — core grabbed, [Down {salvaged = true}]. *)
let test_half_open_reap_salvages () =
  let images = [| Host.build_image ~arch:Arch.Vax segv_sources |] in
  let arch_of_conn = Hashtbl.create 4 in
  let limits = { Evloop.default_limits with Evloop.el_idle_timeout = 10 } in
  let loop = make_loop ~limits ~images ~arch_of_conn () in
  let cl, r = connect loop arch_of_conn [] in
  ignore (conn_exn r);
  client_send cl (Swire.C_hello { magic = Swire.version_magic });
  (* run the target into its fatal stop, so the reaper's going-down hook
     has something worth salvaging *)
  client_send cl (Swire.C_cmd Server.Continue);
  Evloop.tick loop;
  Evloop.tick loop;
  let sid =
    match
      List.filter_map
        (function Swire.S_hello { session } -> Some session | _ -> None)
        (client_recv cl)
    with
    | [ session ] -> session
    | _ -> Alcotest.fail "expected exactly one hello"
  in
  (* now: total silence, link still up *)
  for _ = 1 to 20 do
    Evloop.tick loop
  done;
  check Alcotest.int "reap counted" 1 (Evloop.stats loop).Evloop.es_reaped_idle;
  (match Server.session_state (Evloop.server loop) sid with
  | Some (Server.Down { salvaged; _ }) ->
      check Alcotest.bool "core salvaged on the way down" true salvaged
  | st ->
      Alcotest.failf "session should be down, is %s"
        (match st with Some s -> Server.state_name s | None -> "gone"));
  (* the salvaged core still answers Fetch_core, server-side *)
  match Server.exec (Evloop.server loop) sid Server.Fetch_core with
  | Ok (Server.R_core _) -> ()
  | Ok r -> Alcotest.failf "expected a core, got %s" (Server.reply_to_string r)
  | Error r -> Alcotest.failf "core refused: %s" (Server.refusal_to_string r)

(** An observable disconnect mid-command releases the session cleanly:
    the target is detached (the nub link is not the client wire). *)
let test_disconnect_clean_release () =
  let images = single_arch_images Arch.Mips in
  let arch_of_conn = Hashtbl.create 4 in
  let loop = make_loop ~images ~arch_of_conn () in
  let cl, r = connect loop arch_of_conn [] in
  ignore (conn_exn r);
  client_send cl (Swire.C_hello { magic = Swire.version_magic });
  Evloop.tick loop;
  let sid =
    match client_recv cl with
    | [ Swire.S_hello { session } ] -> session
    | _ -> Alcotest.fail "expected hello"
  in
  (* half a frame, then gone — mid-command disconnect *)
  let frame = Swire.seal ~seq:5 (Swire.encode_client (Swire.C_cmd Server.Backtrace)) in
  client_send_raw cl (String.sub frame 0 7);
  Chan.disconnect cl.cl_ep;
  (* the torn tail holds the release off until the read deadline clears
     it; then the dead wire is noticed and the session released *)
  for _ = 1 to 15 do
    Evloop.tick loop
  done;
  check Alcotest.int "disconnect counted" 1 (Evloop.stats loop).Evloop.es_disconnects;
  match Server.session_state (Evloop.server loop) sid with
  | Some Server.Closed -> ()
  | st ->
      Alcotest.failf "session should be closed, is %s"
        (match st with Some s -> Server.state_name s | None -> "gone")

(** A receive buffer cannot be ballooned: a frame header promising more
    than the buffer cap quarantines the sender when the bytes pile up. *)
let test_rx_overflow_quarantine () =
  let images = single_arch_images Arch.Mips in
  let arch_of_conn = Hashtbl.create 4 in
  let limits = { Evloop.default_limits with Evloop.el_rx_buffer = 1024 } in
  let loop = make_loop ~limits ~images ~arch_of_conn () in
  let cl, r = connect loop arch_of_conn [] in
  ignore (conn_exn r);
  (* a legal-looking header claiming 8000 bytes, then a flood of filler
     that can never complete it before the buffer cap *)
  let body = String.make 8000 'x' in
  let frame = Swire.seal ~seq:0 body in
  client_send_raw cl (String.sub frame 0 2000);
  Evloop.tick loop;
  check Alcotest.int "overflow quarantined" 1 (Evloop.stats loop).Evloop.es_quarantined;
  check Alcotest.bool "connection closed" false (Chan.is_connected cl.cl_ep)

(** Fairness: a backlogged client must not starve a light one — the
    light client's single command answers on the very tick it could,
    despite 8 queued commands ahead of it on the other connection. *)
let test_drr_fairness () =
  let images = single_arch_images Arch.Mips in
  let arch_of_conn = Hashtbl.create 4 in
  (* a quantum small enough that the flood cannot drain in one round,
     but big enough for any single command *)
  let limits = { Evloop.default_limits with Evloop.el_quantum = 8 } in
  let loop = make_loop ~limits ~images ~arch_of_conn () in
  let heavy, rh = connect loop arch_of_conn [] in
  let light, rl = connect loop arch_of_conn [] in
  ignore (conn_exn rh);
  ignore (conn_exn rl);
  client_send heavy (Swire.C_hello { magic = Swire.version_magic });
  client_send light (Swire.C_hello { magic = Swire.version_magic });
  Evloop.tick loop;
  ignore (client_recv heavy);
  ignore (client_recv light);
  (* heavy floods a breakpoint, a continue into it, and a run of
     backtraces — the continue alone costs the transport dozens of RPCs,
     so the backlog spans several DRR rounds; light sends one cheap
     command in the same tick *)
  client_send heavy (Swire.C_cmd (Server.Break_function "fib"));
  client_send heavy (Swire.C_cmd Server.Continue);
  for _ = 1 to 7 do
    client_send heavy (Swire.C_cmd Server.Backtrace)
  done;
  client_send light (Swire.C_cmd (Server.Break_function "fib"));
  Evloop.tick loop;
  let light_replies =
    List.filter (function Swire.S_reply _ -> true | _ -> false) (client_recv light)
  in
  check Alcotest.int "light client answered on the first tick" 1
    (List.length light_replies);
  (* the flood really did outlast the first round *)
  check Alcotest.bool "heavy backlog survived its first quantum" true
    (Evloop.queued loop > 0);
  (* and the heavy client is not starved either: its whole queue drains *)
  let got = ref 0 in
  for _ = 1 to 200 do
    Evloop.tick loop;
    got :=
      !got
      + List.length
          (List.filter (function Swire.S_reply _ -> true | _ -> false) (client_recv heavy))
  done;
  check Alcotest.int "heavy client's backlog fully served" 9
    (got := !got
            + List.length
                (List.filter
                   (function Swire.S_reply _ -> true | _ -> false)
                   (client_recv heavy));
     !got)

(** Graceful drain: queued commands finish, every connection gets a
    goodbye, sessions detach, the report says so, and nothing is
    admitted afterwards. *)
let test_graceful_drain () =
  let images = single_arch_images Arch.Mips in
  let arch_of_conn = Hashtbl.create 4 in
  let loop = make_loop ~images ~arch_of_conn () in
  let a, ra = connect loop arch_of_conn [] in
  let b, rb = connect loop arch_of_conn [] in
  ignore (conn_exn ra);
  ignore (conn_exn rb);
  client_send a (Swire.C_hello { magic = Swire.version_magic });
  client_send b (Swire.C_hello { magic = Swire.version_magic });
  Evloop.tick loop;
  ignore (client_recv a);
  ignore (client_recv b);
  (* in-flight work at drain time *)
  client_send a (Swire.C_cmd (Server.Break_function "fib"));
  client_send a (Swire.C_cmd Server.Continue);
  client_send b (Swire.C_cmd Server.Where);
  (* one tick to ingest the frames, then drain *)
  Evloop.tick loop;
  let rep = Evloop.drain loop in
  check Alcotest.bool "drain completed in its deadline" true rep.Evloop.dr_completed;
  check Alcotest.int "both sessions detached" 2 rep.Evloop.dr_detached;
  check Alcotest.int "nothing needed salvage" 0 rep.Evloop.dr_salvaged;
  let a_msgs = client_recv a and b_msgs = client_recv b in
  let replies ms = List.length (List.filter (function Swire.S_reply _ -> true | _ -> false) ms) in
  let byes ms = List.length (List.filter (function Swire.S_bye _ -> true | _ -> false) ms) in
  check Alcotest.int "client a: queued commands answered" 2 (replies a_msgs);
  check Alcotest.int "client a: one goodbye" 1 (byes a_msgs);
  check Alcotest.int "client b: queued command answered" 1 (replies b_msgs);
  check Alcotest.int "client b: one goodbye" 1 (byes b_msgs);
  List.iter
    (fun s ->
      match s.Server.ss_state with
      | Server.Closed | Server.Down _ -> ()
      | st -> Alcotest.failf "session %d not released: %s" s.Server.ss_id (Server.state_name st))
    (Server.sessions (Evloop.server loop))

(* --- the chaos soak ----------------------------------------------------------- *)

type hostile =
  | Garbage  (** seeded random bytes, never a hello *)
  | Tearer  (** frames torn at every byte boundary, intact ones behind *)
  | Slow  (** dribbles below the read deadline *)
  | Vanisher  (** disconnects mid-command *)
  | Ghost  (** goes silent with the link up: half-open *)
  | Faulted  (** a healthy script over a seeded faulty wire *)

let hostile_name = function
  | Garbage -> "garbage"
  | Tearer -> "tearer"
  | Slow -> "slowloris"
  | Vanisher -> "vanisher"
  | Ghost -> "ghost"
  | Faulted -> "faulted"

let hostiles = [| Garbage; Tearer; Slow; Vanisher; Ghost; Faulted |]

let soak_clients () =
  match Sys.getenv_opt "LDB_WIRE_SOAK_CLIENTS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 1 -> n | _ -> 64)
  | None -> 64

let soak_log_path () =
  let dir = Option.value ~default:"." (Sys.getenv_opt "LDB_SOAK_LOG_DIR") in
  Filename.concat dir "server-wire-soak-events.log"

let test_chaos_soak () =
  let n = soak_clients () in
  let arches = Array.of_list Arch.all in
  let images = Array.map (fun arch -> Host.build_image ~arch fib_sources) arches in
  let baselines =
    Array.init (Array.length arches) (fun ix ->
        wire_baseline ~images ~arch_ix:ix)
  in
  let arch_of_conn = Hashtbl.create 64 in
  let limits =
    {
      Evloop.default_limits with
      Evloop.el_max_conns = n + 16;
      el_read_deadline = 6;
      el_idle_timeout = 40;
      el_max_strikes = 3;
      el_max_errors = 16;
      el_drain_deadline = 400;
    }
  in
  let loop = make_loop ~limits ~images ~arch_of_conn () in
  let rng = Random.State.make [| 0x51EE7 |] in
  (* every client: healthy on even indices, the hostile rotation on odd *)
  let kind_of i = if i mod 2 = 0 then None else Some hostiles.((i / 2) mod Array.length hostiles) in
  let clients =
    Array.init n (fun i ->
        let arch_ix = i mod Array.length arches in
        let fault =
          match kind_of i with
          | Some Faulted ->
              Some
                ( 9000 + (31 * i),
                  Faultchan.profile ~rate:0.08
                    ~kinds:Faultchan.[ Drop; Corrupt; Truncate; Duplicate; Stall ]
                    ~stall_ticks:3 () )
          | _ -> None
        in
        let cl, res = connect ?fault ~arch_ix loop arch_of_conn soak_script in
        ignore (conn_exn res);
        (i, arch_ix, kind_of i, cl))
  in
  (* per-client driver state machines *)
  let steps =
    Array.to_list
      (Array.map
         (fun (_i, _arch_ix, kind, cl) ->
           match kind with
           | None | Some Faulted ->
               let started = ref false in
               fun () ->
                 if not !started then begin
                   started := true;
                   client_send cl (Swire.C_hello { magic = Swire.version_magic });
                   cl.cl_awaiting <- true
                 end;
                 step_healthy cl;
                 not cl.cl_done
           | Some Garbage ->
               let sent = ref 0 in
               fun () ->
                 ignore
                   (List.map
                      (fun m ->
                        cl.cl_transcript <- Swire.server_msg_to_string m :: cl.cl_transcript;
                        m)
                      (client_recv cl));
                 if !sent < 40 && Chan.is_connected cl.cl_ep then begin
                   incr sent;
                   let len = 5 + Random.State.int rng 30 in
                   client_send_raw cl
                     (String.init len (fun _ -> Char.chr (Random.State.int rng 256)))
                 end;
                 !sent < 40 && Chan.is_connected cl.cl_ep
           | Some Tearer ->
               (* hello first, then every command as a torn prefix with the
                  intact frame right behind — the tear offset sweeps the
                  whole frame as the script advances *)
               let state = ref (-1) in
               let cmds = ref soak_script in
               fun () ->
                 List.iter
                   (fun m ->
                     cl.cl_transcript <- Swire.server_msg_to_string m :: cl.cl_transcript;
                     match m with Swire.S_bye _ -> cl.cl_done <- true | _ -> ())
                   (client_recv cl);
                 if cl.cl_done then false
                 else begin
                   (if !state = -1 then
                      client_send cl (Swire.C_hello { magic = Swire.version_magic })
                    else if !state mod 4 = 0 then begin
                      match !cmds with
                      | cmd :: rest ->
                          cmds := rest;
                          let frame =
                            Swire.seal ~seq:cl.cl_seq
                              (Swire.encode_client (Swire.C_cmd cmd))
                          in
                          cl.cl_seq <- cl.cl_seq + 1;
                          let cut = 1 + (!state / 4 * 5 mod (String.length frame - 1)) in
                          client_send_raw cl (String.sub frame 0 cut);
                          client_send_raw cl frame
                      | [] ->
                          cl.cl_done <- true;
                          client_send cl Swire.C_bye
                    end);
                   incr state;
                   not cl.cl_done
                 end
           | Some Slow ->
               let frame =
                 Swire.seal ~seq:7 (Swire.encode_client (Swire.C_cmd Server.Where))
               in
               let state = ref (-1) in
               let pos = ref 0 in
               fun () ->
                 List.iter
                   (fun m ->
                     cl.cl_transcript <- Swire.server_msg_to_string m :: cl.cl_transcript;
                     match m with Swire.S_bye _ -> cl.cl_done <- true | _ -> ())
                   (client_recv cl);
                 if cl.cl_done then false
                 else begin
                   (if !state = -1 then
                      client_send cl (Swire.C_hello { magic = Swire.version_magic })
                    else if !state mod 9 = 0 && !pos < String.length frame then begin
                      client_send_raw cl (String.make 1 frame.[!pos]);
                      incr pos
                    end);
                   incr state;
                   not cl.cl_done
                 end
           | Some Vanisher ->
               let state = ref (-1) in
               fun () ->
                 List.iter
                   (fun m ->
                     cl.cl_transcript <- Swire.server_msg_to_string m :: cl.cl_transcript)
                   (client_recv cl);
                 incr state;
                 (match !state with
                 | 0 -> client_send cl (Swire.C_hello { magic = Swire.version_magic })
                 | 4 -> client_send cl (Swire.C_cmd (Server.Break_function "fib"))
                 | 8 ->
                     (* half a command, then gone *)
                     let frame =
                       Swire.seal ~seq:9 (Swire.encode_client (Swire.C_cmd Server.Continue))
                     in
                     client_send_raw cl (String.sub frame 0 9);
                     (try Chan.disconnect cl.cl_ep with _ -> ());
                     cl.cl_done <- true
                 | _ -> ());
                 not cl.cl_done
           | Some Ghost ->
               let state = ref (-1) in
               fun () ->
                 List.iter
                   (fun m ->
                     cl.cl_transcript <- Swire.server_msg_to_string m :: cl.cl_transcript)
                   (client_recv cl);
                 incr state;
                 (match !state with
                 | 0 -> client_send cl (Swire.C_hello { magic = Swire.version_magic })
                 | 4 -> client_send cl (Swire.C_cmd (Server.Break_function "fib"))
                 | _ -> ());
                 (* never says another word; keep stepping so the reap's
                    goodbye lands in the transcript *)
                 !state < 120)
         clients)
  in
  let ticks = run_clients loop steps ~max_ticks:600 in
  (* reconnect storm: a burst past the cap; the overflow must be refused
     with typed frames before any handshake work *)
  let open_now = List.length (Evloop.conns loop) in
  let burst = limits.Evloop.el_max_conns - open_now + 5 in
  let refused_before = (Evloop.stats loop).Evloop.es_refused_admission in
  let storm =
    List.init burst (fun _ ->
        let cl, res = connect loop arch_of_conn [] in
        (cl, res))
  in
  let refused_typed =
    List.length
      (List.filter
         (fun (cl, res) ->
           match res with
           | `Refused -> (
               match client_recv cl with
               | [ Swire.S_refused (Server.Overloaded _) ] -> true
               | _ -> false)
           | `Conn _ ->
               (* admitted stormers vanish immediately *)
               (try Chan.disconnect cl.cl_ep with _ -> ());
               false)
         storm)
  in
  check Alcotest.int "storm overflow refused, typed, every time" 5 refused_typed;
  check Alcotest.int "refusals counted" (refused_before + 5)
    (Evloop.stats loop).Evloop.es_refused_admission;
  Evloop.tick loop;
  (* drain within its deadline *)
  let rep = Evloop.drain loop in
  (* flight recorder out first, so a failing assert still leaves it *)
  let sv = Evloop.server loop in
  let oc = open_out (soak_log_path ()) in
  List.iter
    (fun e -> output_string oc (Server.log_entry_to_string e ^ "\n"))
    (Server.events sv);
  output_string oc (Server.render_sessions sv);
  close_out oc;
  check Alcotest.bool
    (Printf.sprintf "drain completed within its %d-tick deadline"
       limits.Evloop.el_drain_deadline)
    true rep.Evloop.dr_completed;
  (* the verdicts *)
  let st = Evloop.stats loop in
  Array.iter
    (fun (i, arch_ix, kind, cl) ->
      let who =
        Printf.sprintf "client %d (%s, %s)" i
          (Arch.name arches.(arch_ix))
          (match kind with None -> "healthy" | Some h -> hostile_name h)
      in
      match kind with
      | None ->
          (* byte-identical to the single-client baseline *)
          let base = baselines.(arch_ix) in
          let got = answers cl in
          check Alcotest.int (who ^ ": same number of answers") (List.length base)
            (List.length got);
          List.iter2
            (fun b g -> check Alcotest.string (who ^ ": answer") b g)
            base got
      | Some (Garbage | Tearer | Slow) ->
          (* every actively-hostile client heard something typed *)
          check Alcotest.bool (who ^ ": saw a typed error/refusal/goodbye") true
            (typed_lines cl <> [])
      | Some Ghost ->
          check Alcotest.bool (who ^ ": heard the reaper's goodbye") true
            (List.exists
               (fun l -> String.length l >= 4 && String.sub l 0 4 = "bye:")
               (List.rev cl.cl_transcript))
      | Some (Vanisher | Faulted) ->
          (* nothing promised beyond the server surviving them *)
          ())
    clients;
  (* the hostile machinery actually fired *)
  check Alcotest.bool "protocol errors were recorded" true (st.Evloop.es_protocol_errors > 0);
  check Alcotest.bool "quarantines happened" true (st.Evloop.es_quarantined > 0);
  check Alcotest.bool "half-open reaps happened" true (st.Evloop.es_reaped_idle > 0);
  check Alcotest.bool "healthy work was served" true (st.Evloop.es_served > 0);
  (* every session is released after drain *)
  List.iter
    (fun s ->
      match s.Server.ss_state with
      | Server.Closed | Server.Down _ -> ()
      | stt ->
          Alcotest.failf "session %d leaked from drain: %s" s.Server.ss_id
            (Server.state_name stt))
    (Server.sessions sv);
  if ticks >= 600 then Alcotest.fail "soak clients did not settle in 600 ticks"

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "evloop"
    [
      ( "admission",
        [ case "cap and drain refuse typed, pre-handshake" test_admission_cap ] );
      ("handshake", [ case "version and order policed" test_handshake_policing ]);
      ( "hostile",
        [
          case "slowloris quarantined" test_slowloris_quarantine;
          case "half-open reaped into core salvage" test_half_open_reap_salvages;
          case "mid-command disconnect releases cleanly" test_disconnect_clean_release;
          case "rx overflow quarantined" test_rx_overflow_quarantine;
        ] );
      ("fairness", [ case "deficit round robin starves no one" test_drr_fairness ]);
      ("drain", [ case "graceful drain: finish, goodbye, release" test_graceful_drain ]);
      ( "soak",
        [ case "chaos soak: 64 wire clients, hostile subset" test_chaos_soak ] );
    ]
