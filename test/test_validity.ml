(** Variable-validity ranges, end to end: the debugger-visible behavior
    (a typed [<... uninitialized at this point>] instead of garbage, an
    expression-server refusal, an [`Unsupported] condition verdict) and
    the {e dynamic soundness differential}: run real programs on all four
    simulated targets, poke a sentinel into every frame-local slot at
    function entry, stop at every executed stopping point, and check that
    nothing the symbol table calls [Valid] is ever observed still holding
    the sentinel — and that everything it calls [Uninit] prints the
    warning.  This pits the compiler's static claim against the machine's
    actual trace. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Symtab = Ldb_ldb.Symtab
module Frame = Ldb_ldb.Frame
module Breakpoint = Ldb_ldb.Breakpoint
module A = Ldb_amemory.Amemory
module V = Ldb_pscript.Value
module Eval = Ldb_exprserver.Eval

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- the debugger-visible contract ------------------------------------------- *)

let work_src =
  {|
int work(int n)
{
    int x;
    int y;
    y = n + 1;
    x = y * 2;
    return x + y;
}
int main(void) { return work(5); }
|}

(* line 6 is "y = n + 1": at its stopping point neither x nor y has been
   assigned yet; at line 7 ("x = y * 2") y is valid, x still is not *)

let session_at arch line =
  let s = Testkit.debug_session ~arch [ ("t.c", work_src) ] in
  ignore (Ldb.break_line s.Testkit.d s.Testkit.tg ~line);
  (match Ldb.continue_ s.Testkit.d s.Testkit.tg with
  | Ok (Ldb.Stopped _) -> ()
  | _ -> Alcotest.fail "did not stop at breakpoint");
  (s, Ldb.top_frame s.Testkit.d s.Testkit.tg)

let vname = function
  | Some v -> Symtab.validity_name v
  | None -> "none"

let test_print_uninit_warns () =
  List.iter
    (fun arch ->
      let an = Arch.name arch in
      let s, fr = session_at arch 6 in
      let d = s.Testkit.d and tg = s.Testkit.tg in
      check Alcotest.string (an ^ " x fact") "uninit"
        (vname (Ldb.variable_validity d tg fr "x"));
      check Alcotest.string (an ^ " y fact") "uninit"
        (vname (Ldb.variable_validity d tg fr "y"));
      (* params are untracked: no claim, printable *)
      check Alcotest.string (an ^ " n fact") "none"
        (vname (Ldb.variable_validity d tg fr "n"));
      check Alcotest.string (an ^ " print x") "<int x: uninitialized at this point>"
        (Ldb.print_value d tg fr "x");
      (* the value is reachable once the compiler can prove the write *)
      let s2, fr2 = session_at arch 8 in
      check Alcotest.string (an ^ " y fact at line 8") "valid"
        (vname (Ldb.variable_validity s2.Testkit.d s2.Testkit.tg fr2 "y"));
      check Alcotest.string (an ^ " print y at line 8") "6"
        (Ldb.print_value s2.Testkit.d s2.Testkit.tg fr2 "y"))
    Arch.all

let test_evaluate_refuses_uninit () =
  let arch = Arch.Sparc in
  let s, fr = session_at arch 6 in
  let sess = Eval.start ~arch in
  (match Eval.eval_string s.Testkit.d s.Testkit.tg fr sess "x + 1" with
  | v -> Alcotest.failf "evaluated uninitialized x to %s" v
  | exception Eval.Error m ->
      Alcotest.(check bool) "typed refusal" true
        (contains m "uninitialized"));
  (* the same server session still answers valid queries *)
  check Alcotest.string "n still evaluates" "5"
    (Eval.eval_string s.Testkit.d s.Testkit.tg fr sess "n")

let test_condition_refuses_uninit () =
  List.iter
    (fun arch ->
      let an = Arch.name arch in
      let s, _fr = session_at arch 6 in
      let sess = Eval.start ~arch in
      let addr =
        match Ldb.break_line s.Testkit.d s.Testkit.tg ~line:6 with
        | a :: _ -> a
        | [] -> Alcotest.fail "no stopping point at line 6"
      in
      (match
         Eval.compile_condition s.Testkit.d s.Testkit.tg sess ~addr "x > 0"
       with
      | Error (`Unsupported m) ->
          Alcotest.(check bool) (an ^ " typed unsupported") true
            (contains m "uninitialized")
      | Ok _ -> Alcotest.failf "%s: compiled a condition on uninitialized x" an
      | Error (`Error m) -> Alcotest.failf "%s: wrong error class: %s" an m
      | Error (`Unverified _) -> Alcotest.failf "%s: wrong error class: unverified" an);
      (* a condition on the (written) parameter still compiles *)
      match
        Eval.compile_condition s.Testkit.d s.Testkit.tg sess ~addr "n > 3"
      with
      | Ok _ -> ()
      | Error _ -> Alcotest.failf "%s: condition on parameter refused" an)
    [ Arch.Mips; Arch.Vax ]

(* --- dynamic soundness differential ------------------------------------------ *)

let sentinel = 0x5F5F5F5Fl

(** Walk a stop's scope chain, yielding each distinct variable entry. *)
let visible_locals (stop : Symtab.stop) : V.t list =
  let acc = ref [] in
  let rec go (e : V.t) =
    match e.V.v with
    | V.Dict dd ->
        (match V.dict_get dd "kind" with
        | Some k when V.to_str k = "variable" -> acc := e :: !acc
        | _ -> ());
        (match V.dict_get dd "uplink" with Some up -> go up | None -> ())
    | _ -> ()
  in
  go stop.Symtab.stop_scope;
  List.rev !acc

let entry_name (e : V.t) =
  match V.dict_get (V.to_dict e) "name" with Some n -> V.to_str n | None -> "?"

let entry_size (e : V.t) =
  match V.dict_get (V.to_dict e) "type" with
  | Some ty -> (
      match V.dict_get (V.to_dict ty) "size" with Some s -> V.to_int s | None -> 4)
  | None -> 4

(** A frame-based location, or [None] for registers/globals/statics. *)
let frame_loc d tg fr (e : V.t) : A.location option =
  match V.dict_get (V.to_dict e) "where" with
  | Some w when (match w.V.v with V.Arr _ -> true | _ -> false) -> (
      (* an unevaluated where-procedure: frame-relative iff it mentions
         FrameLoc *)
      let uses_frame =
        Array.exists
          (fun (it : V.t) -> match it.V.v with V.Name "FrameLoc" -> true | _ -> false)
          (match w.V.v with V.Arr a -> a | _ -> [||])
      in
      if uses_frame then
        match Ldb.location_of d tg fr e with
        | loc -> Some loc
        | exception _ -> None
      else None)
  | _ -> None

(** Drive one program through every executed stopping point on [arch],
    checking the emitted validity claims against the observed trace. *)
let soak_program arch sources =
  let s = Testkit.debug_session ~arch sources in
  let d = s.Testkit.d and tg = s.Testkit.tg in
  Ldb.force_symbols d tg;
  (* plant a breakpoint on every stopping point of every procedure *)
  List.iter
    (fun proc ->
      List.iter
        (fun stop ->
          let addr = Ldb.stop_address d tg stop in
          if not (Hashtbl.mem tg.Ldb.tg_breaks addr) then
            ignore
              (Breakpoint.plant tg.Ldb.tg_breaks tg.Ldb.tg_tdesc tg.Ldb.tg_wire ~addr
                 ~source:(Symtab.entry_name stop.Symtab.stop_proc, stop.Symtab.stop_line)))
        (Symtab.stops_of_proc proc))
    (Symtab.procs tg.Ldb.tg_symtab);
  let checked = ref 0 and poked = ref 0 in
  let rec drive () =
    match Ldb.continue_ d tg with
    | Error _ -> Alcotest.fail "target died during the validity soak"
    | Ok (Ldb.Exited _) -> ()
    | Ok (Ldb.Stopped _) ->
        let fr = Ldb.top_frame d tg in
        (match Ldb.stop_of_frame d tg fr with
        | None -> ()
        | Some stop ->
            let locals = visible_locals stop in
            (* at the function's entry stop, poison every frame-local
               slot of the whole procedure (inner-scope locals are not
               visible yet but their slots already exist) so an unwritten
               variable is observable *)
            if stop.Symtab.stop_index = 0 then
              List.iter
                (fun st ->
                  List.iter
                    (fun e ->
                      match frame_loc d tg fr e with
                      | None -> ()
                      | Some (A.Absolute { space; offset }) ->
                          let words = (entry_size e + 3) / 4 in
                          for w = 0 to words - 1 do
                            A.store_i32 fr.Frame.fr_mem
                              (A.absolute space (offset + (4 * w)))
                              sentinel
                          done;
                          incr poked
                      | Some _ -> ())
                    (visible_locals st))
                (Symtab.stops_of_proc stop.Symtab.stop_proc);
            List.iter
              (fun e ->
                let name = entry_name e in
                match Ldb.validity_of d tg fr e with
                | None -> ()
                | Some Symtab.Vuninit ->
                    (* print must warn, not show the poisoned slot — but
                       only when name lookup reaches this same entry
                       (shadowing may hide it) *)
                    let resolved_here =
                      match Ldb.resolve d tg fr name with
                      | Some r -> V.to_dict r == V.to_dict e
                      | None -> false
                    in
                    if resolved_here then begin
                      let out = Ldb.print_value d tg fr name in
                      if not (contains out "uninitialized") then
                        Alcotest.failf "%s %s: stop %d: print of uninit %s gave %S"
                          (Arch.name arch)
                          (Symtab.entry_name stop.Symtab.stop_proc)
                          stop.Symtab.stop_index name out;
                      incr checked
                    end
                | Some Symtab.Vvalid -> (
                    (* the table claims every path wrote it: the sentinel
                       must be gone *)
                    match frame_loc d tg fr e with
                    | Some loc when entry_size e = 4 ->
                        let v = A.fetch_i32 fr.Frame.fr_mem loc in
                        if v = sentinel then
                          Alcotest.failf
                            "%s %s: stop %d: %s claimed Valid but never written"
                            (Arch.name arch)
                            (Symtab.entry_name stop.Symtab.stop_proc)
                            stop.Symtab.stop_index name;
                        incr checked
                    | _ -> ())
                | Some Symtab.Vdead -> ())
              locals);
        drive ()
    | Ok _ -> Alcotest.fail "unexpected target state during the validity soak"
  in
  drive ();
  (!checked, !poked)

let soak_programs =
  [
    [ ("fib.c", Testkit.fib_c) ];
    [
      ( "soak.c",
      {|
int gcd(int a, int b)
{
    int t;
    while (b != 0) { t = b; b = a - a / b * b; a = t; }
    return a;
}
int classify(int n)
{
    int odd;
    int big;
    odd = n - n / 2 * 2;
    if (n > 100) { big = 1; return odd + 2 * big; }
    return odd;
}
int main(void)
{
    int r;
    r = gcd(48, 18);
    r = r + classify(7);
    r = r + classify(300);
    return r;
}
|} );
    ];
  ]

let test_dynamic_soundness () =
  List.iter
    (fun arch ->
      List.iter
        (fun sources ->
          let checked, poked = soak_program arch sources in
          Alcotest.(check bool)
            (Arch.name arch ^ " exercised claims")
            true
            (checked > 0 && poked > 0))
        soak_programs)
    Arch.all

let () =
  Alcotest.run "validity"
    [
      ( "debugger",
        [
          Alcotest.test_case "print of uninit local warns" `Quick test_print_uninit_warns;
          Alcotest.test_case "expression server refuses uninit" `Quick
            test_evaluate_refuses_uninit;
          Alcotest.test_case "conditions on uninit are unsupported" `Quick
            test_condition_refuses_uninit;
        ] );
      ( "differential",
        [
          Alcotest.test_case "dynamic soundness on all targets" `Quick
            test_dynamic_soundness;
        ] );
    ]
