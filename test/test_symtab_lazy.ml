(** Demand-driven symbol tables: forcing one unit never touches another,
    lazy and eager lookup agree on every architecture, a unit whose body
    fails stays retryable, compressed tables behave identically, and the
    accumulators scale to many-unit programs. *)

open Ldb_machine
module Ldb = Ldb_ldb.Ldb
module Symtab = Ldb_ldb.Symtab
module V = Ldb_pscript.Value
module I = Ldb_pscript.Interp

let check = Alcotest.check

(* two units; afun/bfun names make the demand hints unambiguous *)
let a_c =
  {|
int bfun(int x);
static int astatic;
int aglobal = 7;
int afun(int n)
{
    int a;
    a = n + 1;
    astatic = a;
    return a;
}
int main(void)
{
    printf("%d\n", bfun(afun(1)));
    return 0;
}
|}

let b_c =
  {|
static int bstatic;
int bfun(int x)
{
    int b;
    b = x * 2;
    bstatic = b;
    return b;
}
|}

let two_unit_session ?compress ~arch () =
  Testkit.debug_session ?compress ~arch [ ("a.c", a_c); ("b.c", b_c) ]

let with_force_log f =
  let saved = !Symtab.force_hook in
  let log = ref [] in
  Symtab.force_hook := (fun file -> log := file :: !log);
  Fun.protect ~finally:(fun () -> Symtab.force_hook := saved) (fun () -> f log)

(* --- laziness ------------------------------------------------------------------ *)

let test_lazy_attach () =
  List.iter
    (fun arch ->
      with_force_log (fun log ->
          let s = two_unit_session ~arch () in
          let st = s.Testkit.tg.Ldb.tg_symtab in
          (* attach forces nothing *)
          check Alcotest.(list string) (Arch.name arch ^ " attach") []
            (Symtab.forced_units st);
          check Alcotest.int (Arch.name arch ^ " attach bytes") 0 (Symtab.forced_bytes st);
          (* source files are known without forcing *)
          check Alcotest.(list string) (Arch.name arch ^ " files") [ "a.c"; "b.c" ]
            (Symtab.source_files st);
          (* a breakpoint in afun forces a.c only *)
          ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "afun" : int);
          check Alcotest.(list string) (Arch.name arch ^ " one unit forced") [ "a.c" ]
            (Symtab.forced_units st);
          check Alcotest.(list string) (Arch.name arch ^ " hook saw a.c only") [ "a.c" ]
            !log;
          Alcotest.(check bool) (Arch.name arch ^ " partial bytes") true
            (Symtab.forced_bytes st < Symtab.total_bytes st);
          (* a query into b.c forces exactly the other unit *)
          ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "bfun" : int);
          check Alcotest.(list string) (Arch.name arch ^ " both forced") [ "a.c"; "b.c" ]
            (Symtab.forced_units st);
          check Alcotest.(list string) (Arch.name arch ^ " hook order") [ "b.c"; "a.c" ]
            !log))
    Arch.all

let test_line_queries_by_file () =
  let arch = Arch.Mips in
  with_force_log (fun log ->
      let s = two_unit_session ~arch () in
      let st = s.Testkit.tg.Ldb.tg_symtab in
      (* line 7 exists in both units; restricting to b.c forces only b.c *)
      let addrs = Ldb.break_line ~file:"b.c" s.Testkit.d s.Testkit.tg ~line:7 in
      Alcotest.(check bool) "stops found" true (addrs <> []);
      check Alcotest.(list string) "only b.c forced" [ "b.c" ] (Symtab.forced_units st);
      check Alcotest.(list string) "hook" [ "b.c" ] !log;
      (* the unrestricted query forces the remaining covering unit and
         returns stops from both *)
      let all = Ldb.break_line s.Testkit.d s.Testkit.tg ~line:7 in
      Alcotest.(check bool) "more stops across units" true
        (List.length all >= List.length addrs);
      check Alcotest.(list string) "both forced" [ "a.c"; "b.c" ] (Symtab.forced_units st))

let test_stepping_forces_one_unit () =
  (* the single-step loop queries stop addresses constantly; make sure the
     pc index keeps it inside the procedure's own unit *)
  let arch = Arch.Mips in
  let s = two_unit_session ~arch () in
  let st = s.Testkit.tg.Ldb.tg_symtab in
  ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "bfun" : int);
  (match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
  | Ldb.Stopped _ -> ()
  | _ -> Alcotest.fail "did not stop at bfun");
  ignore (Testkit.ok (Ldb.step_source s.Testkit.d s.Testkit.tg) : Ldb.state);
  let fr = Ldb.top_frame s.Testkit.d s.Testkit.tg in
  check Alcotest.string "still in bfun" "bfun" (Ldb.frame_function s.Testkit.d s.Testkit.tg fr);
  (* stepping inside bfun needed b.c (for its stops) but never a.c *)
  check Alcotest.(list string) "a.c untouched" [ "b.c" ] (Symtab.forced_units st)

(* --- lazy/eager agreement ----------------------------------------------------- *)

let test_lazy_eager_agree () =
  List.iter
    (fun arch ->
      let lazy_s = two_unit_session ~arch () in
      let eager_s = two_unit_session ~arch () in
      Ldb.force_symbols eager_s.Testkit.d eager_s.Testkit.tg;
      let stop s = ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "bfun" : int);
        match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
        | Ldb.Stopped _ -> Ldb.top_frame s.Testkit.d s.Testkit.tg
        | _ -> Alcotest.failf "%s: did not stop" (Arch.name arch)
      in
      let fl = stop lazy_s and fe = stop eager_s in
      (* resolution order (locals -> statics -> externs) is unchanged:
         the same names print the same values (or fail identically)
         either way *)
      let printed s fr name =
        match Ldb.print_value s.Testkit.d s.Testkit.tg fr name with
        | v -> v
        | exception Ldb.Error m -> "error: " ^ m
      in
      List.iter
        (fun name ->
          check Alcotest.string
            (Printf.sprintf "%s %s" (Arch.name arch) name)
            (printed eager_s fe name) (printed lazy_s fl name))
        [ "x"; "b"; "bstatic"; "aglobal"; "nosuch" ];
      (* indexed lookups agree with the linear-scan baseline *)
      let st = lazy_s.Testkit.tg.Ldb.tg_symtab in
      Ldb.force_symbols lazy_s.Testkit.d lazy_s.Testkit.tg;
      List.iter
        (fun name ->
          let ix = Symtab.proc_by_name st name in
          let sc = Symtab.proc_by_name_scan st name in
          Alcotest.(check bool)
            (Printf.sprintf "%s proc_by_name %s" (Arch.name arch) name)
            true
            (match (ix, sc) with Some a, Some b -> a == b | None, None -> true | _ -> false))
        [ "afun"; "bfun"; "main"; "nosuch" ];
      List.iter
        (fun line ->
          let names stops =
            List.sort compare
              (List.map (fun s -> (Symtab.entry_name s.Symtab.stop_proc, s.Symtab.stop_index)) stops)
          in
          check
            Alcotest.(list (pair string int))
            (Printf.sprintf "%s stops@%d" (Arch.name arch) line)
            (names (Symtab.stops_at_line_scan st ~line))
            (names (Symtab.stops_at_line st ~line)))
        [ 5; 6; 7; 8; 99 ])
    Arch.all

(* --- failure path -------------------------------------------------------------- *)

let crafted_symtab ~units_ps =
  let interp = Ldb_pscript.Ps.create () in
  let defs = V.dict_create () in
  I.begin_dict interp defs;
  I.run_string interp (Printf.sprintf "/__symtab << /architecture (mips) /units << %s >> >> def" units_ps);
  I.end_dict interp;
  let symtab_dict =
    match V.dict_get defs "__symtab" with
    | Some v -> V.to_dict v
    | None -> Alcotest.fail "no __symtab"
  in
  (interp, Symtab.make ~interp ~symtab_dict)

let with_lint_off f =
  let saved = !Symtab.lint_mode in
  Symtab.lint_mode := `Off;
  Fun.protect ~finally:(fun () -> Symtab.lint_mode := saved) f

let test_failing_unit_is_retryable () =
  with_lint_off (fun () ->
      let body = "NoSuchOperatorXYZ /UNITRESULT$u1 << /procs [ << /name (p1) >> ] >> def" in
      let interp, st =
        crafted_symtab
          ~units_ps:
            (Printf.sprintf "(u1.c) << /body (%s) /tag (u1) >>" (Ldb_cc.Psemit.ps_escape body))
      in
      (* the body raises: the unit must not latch as forced *)
      (match Symtab.force_unit st ~file:"u1.c" with
      | () -> Alcotest.fail "force of a broken unit succeeded"
      | exception _ -> ());
      check Alcotest.(list string) "still unforced" [] (Symtab.forced_units st);
      (* the table stays usable: a second failure is identical *)
      (match Symtab.force_all st with
      | () -> Alcotest.fail "force_all of a broken unit succeeded"
      | exception _ -> ());
      (* repair the environment and retry the same unit *)
      I.run_string interp "/NoSuchOperatorXYZ { } def";
      Symtab.force_unit st ~file:"u1.c";
      check Alcotest.(list string) "forced after repair" [ "u1.c" ] (Symtab.forced_units st);
      Alcotest.(check bool) "lookup works after repair" true
        (Symtab.proc_by_name st "p1" <> None))

(** A unit whose body fails is {e quarantined}: demand-driven searches
    route around it and never re-execute the broken body, listing names
    the unit and why, and only an explicit per-unit force (the repair
    path) lifts the quarantine. *)
let test_quarantine_routes_around () =
  with_lint_off (fun () ->
      let bad = "NoSuchOperatorABC /UNITRESULT$u1 << /procs [ << /name (p1) >> ] >> def" in
      let good = "/UNITRESULT$u2 << /procs [ << /name (p2) >> ] >> def" in
      let interp, st =
        crafted_symtab
          ~units_ps:
            (Printf.sprintf "(u1.c) << /body (%s) /tag (u1) >> (u2.c) << /body (%s) /tag (u2) >>"
               (Ldb_cc.Psemit.ps_escape bad) (Ldb_cc.Psemit.ps_escape good))
      in
      with_force_log (fun log ->
          (* an unhinted search sweeps the units: u1 breaks (and is
             quarantined), but the search routes around it and finds p2 *)
          Alcotest.(check bool) "p2 found despite broken u1" true
            (Symtab.proc_by_name st "p2" <> None);
          check Alcotest.(list string) "only u2 latched" [ "u2.c" ]
            (Symtab.forced_units st);
          (match Symtab.quarantined_units st with
          | [ ("u1.c", reason) ] ->
              Alcotest.(check bool) "failure reason recorded" true (reason <> "")
          | q ->
              Alcotest.failf "expected u1.c quarantined, got [%s]"
                (String.concat "; " (List.map fst q)));
          let forces_after_first = List.length !log in
          (* a second sweep must not re-execute the broken body *)
          Alcotest.(check bool) "p1 not found" true (Symtab.proc_by_name st "p1" = None);
          check Alcotest.int "quarantined unit not re-forced" forces_after_first
            (List.length !log);
          (* line queries degrade to the units that work, typed-ly *)
          (match Symtab.stops_at_line st ~file:"u1.c" ~line:1 with
          | _ -> Alcotest.fail "line query into a quarantined unit succeeded"
          | exception Symtab.Error m ->
              Alcotest.(check bool) "error names the quarantine" true
                (let has_sub s sub =
                   let n = String.length sub and h = String.length s in
                   let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
                   n = 0 || go 0
                 in
                 has_sub m "quarantined"));
          (* repair the environment; the explicit per-unit force lifts the
             quarantine and the unit joins the table *)
          I.run_string interp "/NoSuchOperatorABC { } def";
          Symtab.force_unit st ~file:"u1.c";
          check Alcotest.(list (pair string string)) "quarantine lifted" []
            (Symtab.quarantined_units st);
          Alcotest.(check bool) "p1 found after repair" true
            (Symtab.proc_by_name st "p1" <> None)))

(* --- many units ----------------------------------------------------------------- *)

let test_many_units () =
  with_lint_off (fun () ->
      let n = 40 in
      let buf = Buffer.create 4096 in
      for i = 0 to n - 1 do
        let body =
          Printf.sprintf "/UNITRESULT$u%02d << /procs [ << /name (p%02d) >> ] >> def" i i
        in
        Buffer.add_string buf
          (Printf.sprintf "(u%02d.c) << /body (%s) /tag (u%02d) >> " i
             (Ldb_cc.Psemit.ps_escape body) i)
      done;
      let _, st = crafted_symtab ~units_ps:(Buffer.contents buf) in
      check Alcotest.int "unit count" n (Symtab.unit_count st);
      let procs = Symtab.procs st in
      check Alcotest.int "all procs collected" n (List.length procs);
      (* unit order (sorted by file) is preserved in the accumulated list *)
      check
        Alcotest.(list string)
        "proc order"
        (List.init n (Printf.sprintf "p%02d"))
        (List.map Symtab.entry_name procs);
      (* forcing again must not duplicate *)
      Symtab.force_all st;
      check Alcotest.int "idempotent" n (List.length (Symtab.procs st));
      Alcotest.(check bool) "indexed lookup" true (Symtab.proc_by_name st "p27" <> None))

(* --- compressed tables ----------------------------------------------------------- *)

let test_compressed_sessions () =
  List.iter
    (fun arch ->
      let s = two_unit_session ~compress:true ~arch () in
      let st = s.Testkit.tg.Ldb.tg_symtab in
      ignore (Ldb.break_function s.Testkit.d s.Testkit.tg "bfun" : int);
      (match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
      | Ldb.Stopped _ -> ()
      | _ -> Alcotest.failf "%s: did not stop in compressed session" (Arch.name arch));
      let fr = Ldb.top_frame s.Testkit.d s.Testkit.tg in
      check Alcotest.string (Arch.name arch ^ " function") "bfun"
        (Ldb.frame_function s.Testkit.d s.Testkit.tg fr);
      (* only the queried unit was decoded and forced *)
      check Alcotest.(list string) (Arch.name arch ^ " forced") [ "b.c" ]
        (Symtab.forced_units st);
      (* a compressed and a plain session print identical values *)
      let plain = two_unit_session ~arch () in
      ignore (Ldb.break_function plain.Testkit.d plain.Testkit.tg "bfun" : int);
      (match Testkit.ok (Ldb.continue_ plain.Testkit.d plain.Testkit.tg) with
      | Ldb.Stopped _ -> ()
      | _ -> Alcotest.failf "%s: plain session did not stop" (Arch.name arch));
      let pf = Ldb.top_frame plain.Testkit.d plain.Testkit.tg in
      List.iter
        (fun name ->
          check Alcotest.string
            (Printf.sprintf "%s compressed %s" (Arch.name arch) name)
            (Ldb.print_value plain.Testkit.d plain.Testkit.tg pf name)
            (Ldb.print_value s.Testkit.d s.Testkit.tg fr name))
        [ "x"; "aglobal" ])
    Arch.all

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "symtab_lazy"
    [
      ( "laziness",
        [ case "attach forces nothing" test_lazy_attach;
          case "line queries by file" test_line_queries_by_file;
          case "stepping stays in one unit" test_stepping_forces_one_unit ] );
      ("agreement", [ case "lazy = eager on all targets" test_lazy_eager_agree ]);
      ( "failure",
        [ case "failing unit is retryable" test_failing_unit_is_retryable;
          case "quarantine routes around" test_quarantine_routes_around;
          case "many units" test_many_units ] );
      ("compression", [ case "compressed sessions" test_compressed_sessions ]);
    ]
