(** Tests for the breakpoint-condition bytecode and its static verifier:
    a corpus of malformed and hostile programs that must all be rejected
    (and refused with a typed error before any RPC is issued), qcheck
    properties (decode totality, encode/decode round trips, and the
    soundness theorem: a verifier-accepted program never traps the
    evaluator), and differential tests proving nub-side and
    debugger-side condition evaluation byte-identical on all four
    targets — with the nub site costing orders of magnitude fewer RPCs
    on a hot loop. *)

open Ldb_machine
module B = Ldb_nub.Bpcode
module Bpverify = Ldb_nub.Bpverify
module Ldb = Ldb_ldb.Ldb
module Transport = Ldb_ldb.Transport
module Breakpoint = Ldb_ldb.Breakpoint
module Eval = Ldb_exprserver.Eval

let check = Alcotest.check

(* --- the hostile corpus ------------------------------------------------- *)

let d4 = B.Load { space = 'd'; size = 4; signed = true }

let data_addr = Int32.of_int (Ram.Layout.data_base + 16)

(** More static cost than the fuel bound allows, without any other flaw:
    a long chain of valid loads summed pairwise (the encoder would refuse
    a program this long, but [verify] takes the decoded array — a
    hostile peer can hand the nub's verifier anything). *)
let cost_bomb : B.prog =
  Array.concat
    ([ [| B.Push data_addr; d4 |] ]
    @ List.init 450 (fun _ -> [| B.Push data_addr; d4; B.Bin B.Add |]))

(** A register that is neither sp nor fp on [tg]. *)
let plain_reg (tg : Target.t) =
  let rec go r =
    if r = tg.Target.sp || tg.Target.fp = Some r then go (r + 1) else r
  in
  go 0

(** name, program, expected-finding predicate.  Every entry must be
    rejected, with at least one finding satisfying the predicate. *)
let corpus (tg : Target.t) : (string * B.prog * (Bpverify.finding -> bool)) list =
  let underflow = function Bpverify.Underflow _ -> true | _ -> false in
  let wild = function Bpverify.Wild_read _ -> true | _ -> false in
  let bad_result = function Bpverify.Bad_result _ -> true | _ -> false in
  let zero_div = function Bpverify.Zero_divisor _ -> true | _ -> false in
  [
    ("empty program", [||], (function Bpverify.Empty_program -> true | _ -> false));
    ("binop underflow", [| B.Bin B.Add |], underflow);
    ("not underflow", [| B.Not |], underflow);
    ("compare underflow", [| B.Push 1l; B.Cmp { rel = B.Eq; signed = true } |], underflow);
    ( "stack overflow",
      Array.init (B.max_stack + 1) (fun _ -> B.Push 1l),
      (function Bpverify.Overflow _ -> true | _ -> false) );
    ( "bad register",
      [| B.Load_reg 250 |],
      (function Bpverify.Bad_reg _ -> true | _ -> false) );
    ("wild absolute read", [| B.Push 0l; d4 |], wild);
    ( "read past the data segment",
      [| B.Push (Int32.of_int (Ram.Layout.size - 2)); d4 |],
      wild );
    ( "register-relative code read",
      [| B.Load_reg tg.Target.sp; B.Load { space = 'c'; size = 4; signed = false } |],
      wild );
    ("address from a plain register", [| B.Load_reg (plain_reg tg); d4 |], wild);
    ( "frame offset beyond the bound",
      [| B.Load_reg tg.Target.sp; B.Push 100000l; B.Bin B.Add; d4 |],
      wild );
    ( "boolean used as address",
      [| B.Push 1l; B.Push 2l; B.Cmp { rel = B.Eq; signed = true }; d4 |],
      (function Bpverify.Type_clash _ -> true | _ -> false) );
    ( "backward jump",
      [| B.Push 1l; B.Jmp (-2) |],
      (function Bpverify.Backward_jump _ -> true | _ -> false) );
    ( "jump past the end",
      [| B.Push 1l; B.Jmp 100 |],
      (function Bpverify.Jump_out_of_range _ -> true | _ -> false) );
    ( "jump before the start",
      [| B.Push 1l; B.Jz (-5) |],
      (function Bpverify.Jump_out_of_range _ -> true | _ -> false) );
    ( "paths meet at different depths",
      [| B.Push 1l; B.Jz 1; B.Push 2l; B.Push 3l |],
      (function Bpverify.Depth_mismatch _ -> true | _ -> false) );
    ("two results left", [| B.Push 1l; B.Push 2l |], bad_result);
    ("empty stack at the halt", [| B.Jmp 0 |], bad_result);
    ("divide by constant zero", [| B.Push 1l; B.Push 0l; B.Bin B.Divs |], zero_div);
    ("remainder by constant zero", [| B.Push 1l; B.Push 0l; B.Bin B.Remu |], zero_div);
    ( "static cost exceeds fuel",
      cost_bomb,
      (function Bpverify.Cost_bound _ -> true | _ -> false) );
  ]

let test_corpus_rejected () =
  List.iter
    (fun arch ->
      let tg = Target.of_arch arch in
      List.iter
        (fun (name, prog, pred) ->
          let findings = Bpverify.verify tg prog in
          let label = Arch.name arch ^ ": " ^ name in
          check Alcotest.bool (label ^ " rejected") false (findings = []);
          check Alcotest.bool
            (label ^ " expected finding among: "
            ^ String.concat "; " (List.map Bpverify.finding_to_string findings))
            true
            (List.exists pred findings))
        (corpus tg))
    Arch.all

(** What the compiler actually emits must pass: frame-local loads off
    sp/fp, absolute global loads, compares, short-circuit jumps. *)
let test_exemplars_accepted () =
  List.iter
    (fun arch ->
      let tg = Target.of_arch arch in
      let frameish =
        [| B.Load_reg tg.Target.sp; B.Push 8l; B.Bin B.Add; d4; B.Push 10l;
           B.Cmp { rel = B.Lt; signed = true } |]
      in
      let global =
        [| B.Push data_addr; d4; B.Push 0l; B.Cmp { rel = B.Ne; signed = true } |]
      in
      let short_circuit =
        (* a && b compiled with forward jumps: a; jz +5; b-cmp; jmp +1; push 0 *)
        [| B.Push data_addr; d4; B.Jz 5; B.Push data_addr; d4;
           B.Push 0l; B.Cmp { rel = B.Ne; signed = true }; B.Jmp 1; B.Push 0l |]
      in
      List.iter
        (fun (name, p) ->
          check Alcotest.bool
            (Arch.name arch ^ ": " ^ name ^ ": "
            ^ String.concat "; "
                (List.map Bpverify.finding_to_string (Bpverify.verify tg p)))
            true (Bpverify.accepts tg p))
        [ ("frame-local compare", frameish); ("global compare", global);
          ("short-circuit and", short_circuit) ])
    Arch.all

(* --- the evaluator's own belt (unverified programs fault, never hang) --- *)

let benign_env : B.env =
  {
    B.rd_reg = (fun r -> Int32.of_int (0x1000 + r));
    rd_pc = (fun () -> 0x2000l);
    load = (fun ~space:_ ~addr:_ ~size:_ ~signed:_ -> Ok 7l);
  }

let test_eval_faults_are_typed () =
  (match B.eval benign_env [| B.Jmp (-1) |] with
  | Error B.Fuel -> ()
  | r -> Alcotest.failf "infinite loop: expected fuel fault, got %s"
           (match r with Ok b -> string_of_bool b | Error f -> B.fault_to_string f));
  (match B.eval benign_env [| B.Bin B.Add |] with
  | Error B.Stack_underflow -> ()
  | _ -> Alcotest.fail "underflow not faulted");
  (match B.eval benign_env (Array.init (B.max_stack + 1) (fun _ -> B.Push 1l)) with
  | Error B.Stack_overflow -> ()
  | _ -> Alcotest.fail "overflow not faulted");
  (match B.eval benign_env [| B.Push 1l; B.Jmp 100 |] with
  | Error (B.Bad_jump _) -> ()
  | _ -> Alcotest.fail "wild jump not faulted");
  match
    B.eval
      { benign_env with B.load = (fun ~space:_ ~addr:_ ~size:_ ~signed:_ -> Error "nope") }
      [| B.Push data_addr; d4 |]
  with
  | Error (B.Load_fault _) -> ()
  | _ -> Alcotest.fail "refused load not faulted"

(** Total semantics: division and remainder by a dynamic zero yield 0. *)
let test_division_by_zero_is_zero () =
  List.iter
    (fun op ->
      match B.eval benign_env [| B.Push 7l; B.Push 0l; B.Bin op |] with
      | Ok false -> ()   (* 0 is "no hit" *)
      | Ok true -> Alcotest.fail "div by zero nonzero"
      | Error f -> Alcotest.failf "div by zero faulted: %s" (B.fault_to_string f))
    [ B.Divs; B.Divu; B.Rems; B.Remu ]

(* --- qcheck ------------------------------------------------------------- *)

let gen_insn : B.insn QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun v -> B.Push (Int32.of_int v)) (int_range (-1000) 1000000);
      return (B.Push data_addr);
      map (fun r -> B.Load_reg r) (int_bound 40);
      return B.Load_pc;
      map3
        (fun space size signed -> B.Load { space; size; signed })
        (oneofl [ 'c'; 'd' ]) (oneofl [ 1; 2; 4 ]) bool;
      map (fun op -> B.Bin op)
        (oneofl
           [ B.Add; B.Sub; B.Mul; B.Divs; B.Divu; B.Rems; B.Remu; B.And; B.Or;
             B.Xor; B.Shl; B.Shrs; B.Shru ]);
      map2
        (fun rel signed -> B.Cmp { rel; signed })
        (oneofl [ B.Eq; B.Ne; B.Lt; B.Le; B.Gt; B.Ge ]) bool;
      return B.Not;
      map (fun o -> B.Jz o) (int_range (-3) 6);
      map (fun o -> B.Jnz o) (int_range (-3) 6);
      map (fun o -> B.Jmp o) (int_range (-3) 6);
    ]

let arb_prog =
  QCheck.make ~print:B.to_string
    QCheck.Gen.(map Array.of_list (list_size (int_bound 20) gen_insn))

(** Soundness: on any program the verifier accepts, the evaluator reaches
    a verdict — it never underflows, overflows, runs out of fuel, or
    jumps wild (and with an env whose loads always answer, never faults
    at all). *)
let prop_accepted_never_traps =
  let tg = Target.of_arch Mips in
  Testkit.qtest "verifier-accepted programs never trap the evaluator" ~count:2000
    arb_prog (fun p ->
      (not (Bpverify.accepts tg p))
      || (match B.eval benign_env p with Ok _ -> true | Error _ -> false))

let prop_encode_decode_roundtrip =
  Testkit.qtest "encode/decode round trip" ~count:500 arb_prog (fun p ->
      match B.decode (B.encode p) with Ok q -> q = p | Error _ -> false)

let prop_decode_total =
  Testkit.qtest "decode never raises on arbitrary bytes" ~count:1000
    QCheck.(string_gen QCheck.Gen.char)
    (fun s -> match B.decode s with Ok _ | Error _ -> true)

(* --- typed refusal before the wire -------------------------------------- *)

let rpcs (s : Testkit.session) =
  (Transport.stats (Ldb.transport s.Testkit.tg)).Transport.st_rpcs

(** Every corpus program handed to {!Ldb.set_condition} comes back as a
    typed [`Unverified] — and the transport's RPC counter proves nothing
    was sent: rejected programs never reach the wire. *)
let test_refused_before_the_wire () =
  let s = Testkit.debug_session ~arch:Mips [ ("f.c", Testkit.fib_c) ] in
  let addr = Ldb.break_function s.Testkit.d s.Testkit.tg "fib" in
  List.iter
    (fun (name, prog, pred) ->
      let before = rpcs s in
      (match Ldb.set_condition s.Testkit.d s.Testkit.tg ~addr ~text:name prog with
      | Error (`Unverified findings) ->
          check Alcotest.bool (name ^ ": expected finding") true
            (List.exists pred findings)
      | Ok _ -> Alcotest.failf "%s: hostile program accepted" name);
      check Alcotest.int (name ^ ": no RPC issued") before (rpcs s))
    (corpus s.Testkit.tg.Ldb.tg_tdesc)

(* --- differential: nub site vs. debugger site --------------------------- *)

let spin_src =
  {|
int g = 0;

void spin(int n)
{
    int i;
    for (i = 0; i < n; i++)
        g = g + 1;
    printf("%d\n", g);
}

int main(void)
{
    spin(1000);
    return 0;
}
|}

let contains_sub line sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length line && (String.sub line i n = sub || go (i + 1))
  in
  go 0

let line_containing src sub =
  let lines = String.split_on_char '\n' src in
  let rec go n = function
    | [] -> Alcotest.failf "no source line contains %S" sub
    | l :: rest -> if contains_sub l sub then n else go (n + 1) rest
  in
  go 1 lines

(** Break at the statement containing [stmt] (trying the neighbouring
    line if the stopping point is recorded one off). *)
let break_at (s : Testkit.session) ~src ~stmt : int =
  let l = line_containing src stmt in
  let try_line l =
    match Ldb.break_line s.Testkit.d s.Testkit.tg ~line:l with
    | a :: _ -> Some a
    | [] -> None
    | exception Ldb.Error _ -> None
  in
  match try_line l with
  | Some a -> a
  | None -> (
      match try_line (l + 1) with
      | Some a -> a
      | None -> Alcotest.failf "no stopping point near %S" stmt)

let compile_ok (s : Testkit.session) sess ~addr expr : B.prog =
  match Eval.compile_condition s.Testkit.d s.Testkit.tg sess ~addr expr with
  | Ok prog -> prog
  | Error (`Error m) -> Alcotest.failf "condition %S: %s" expr m
  | Error (`Unsupported m) -> Alcotest.failf "condition %S unsupported: %s" expr m
  | Error (`Unverified fs) ->
      Alcotest.failf "condition %S unverified: %s" expr
        (String.concat "; " (List.map Bpverify.finding_to_string fs))

(** Install [prog] as a condition forced to the debugger site, without
    telling the nub (the fallback path a condition takes when the nub
    refuses or predates the extension). *)
let force_debugger_cond (s : Testkit.session) ~addr ~text prog =
  let bp = Hashtbl.find s.Testkit.tg.Ldb.tg_breaks addr in
  bp.Breakpoint.bp_cond <-
    Some { Breakpoint.c_text = text; c_prog = prog; c_site = `Debugger; c_suppressed = 0 }

let suppressed_at (s : Testkit.session) addr =
  match (Hashtbl.find s.Testkit.tg.Ldb.tg_breaks addr).Breakpoint.bp_cond with
  | Some c -> c.Breakpoint.c_suppressed
  | None -> -1

(** Run [spin_src] to completion with condition [expr] at the hot line,
    evaluated at [site]; return the observed stop sequence (pc, value of
    [i], cumulative suppressed count) and the exit status. *)
let run_site arch (site : Breakpoint.cond_site) expr : (int * int * int) list * int =
  let s = Testkit.debug_session ~arch [ ("spin.c", spin_src) ] in
  let sess = Eval.start ~arch in
  let addr = break_at s ~src:spin_src ~stmt:"g = g + 1" in
  let prog = compile_ok s sess ~addr expr in
  (match site with
  | `Nub -> (
      match Ldb.set_condition s.Testkit.d s.Testkit.tg ~addr ~text:expr prog with
      | Ok `Nub -> ()
      | Ok `Debugger -> Alcotest.fail "nub refused a verified condition"
      | Error (`Unverified _) -> Alcotest.fail "verified program re-refused")
  | `Debugger -> force_debugger_cond s ~addr ~text:expr prog);
  let stops = ref [] in
  let rec go () =
    match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
    | Ldb.Stopped { ctx_addr; _ } ->
        let pc = Ldb.read_ctx_pc s.Testkit.tg ctx_addr in
        let fr = Ldb.top_frame s.Testkit.d s.Testkit.tg in
        let i = Ldb.read_int_var s.Testkit.d s.Testkit.tg fr "i" in
        stops := (pc, i, suppressed_at s addr) :: !stops;
        go ()
    | Ldb.Exited n -> n
    | Ldb.Running -> Alcotest.fail "target still running"
    | Ldb.Detached -> Alcotest.fail "target detached"
  in
  let status = go () in
  (List.rev !stops, status)

let show_stops stops =
  List.map (fun (pc, i, sup) -> Printf.sprintf "%#x i=%d sup=%d" pc i sup) stops

(** The headline equation: on every target, the nub-side and
    debugger-side evaluations of the same compiled condition produce the
    same stop sequence — same pcs, same variable values, same counts of
    silently resumed traps. *)
let test_sites_agree_all_archs () =
  List.iter
    (fun arch ->
      let an = Arch.name arch in
      let nub_stops, nub_status = run_site arch `Nub "i % 300 == 0" in
      let dbg_stops, dbg_status = run_site arch `Debugger "i % 300 == 0" in
      check
        Alcotest.(list string)
        (an ^ " stop sequences identical") (show_stops dbg_stops) (show_stops nub_stops);
      check Alcotest.int (an ^ " exit status") dbg_status nub_status;
      (* and pin the semantics down absolutely, not just cross-site *)
      check
        Alcotest.(list int)
        (an ^ " stops where the condition holds")
        [ 0; 300; 600; 900 ]
        (List.map (fun (_, i, _) -> i) nub_stops);
      check Alcotest.int (an ^ " clean exit") 0 nub_status)
    Arch.all

(** The point of shipping the bytecode: deciding the condition
    target-side eliminates the per-trap round trips.  On a 1000-iteration
    loop stopping once, the nub site must use at least 100x fewer RPCs
    for the same stop. *)
let test_nub_site_saves_rpcs () =
  let measure site =
    let s = Testkit.debug_session ~arch:Mips [ ("spin.c", spin_src) ] in
    let sess = Eval.start ~arch:Mips in
    let addr = break_at s ~src:spin_src ~stmt:"g = g + 1" in
    let prog = compile_ok s sess ~addr "i == 900" in
    (match site with
    | `Nub -> (
        match Ldb.set_condition s.Testkit.d s.Testkit.tg ~addr ~text:"i == 900" prog with
        | Ok `Nub -> ()
        | _ -> Alcotest.fail "nub site unavailable")
    | `Debugger -> force_debugger_cond s ~addr ~text:"i == 900" prog);
    let before = rpcs s in
    (match Testkit.ok (Ldb.continue_ s.Testkit.d s.Testkit.tg) with
    | Ldb.Stopped _ -> ()
    | _ -> Alcotest.fail "expected a stop");
    let used = rpcs s - before in
    let fr = Ldb.top_frame s.Testkit.d s.Testkit.tg in
    check Alcotest.int "stopped at i == 900" 900
      (Ldb.read_int_var s.Testkit.d s.Testkit.tg fr "i");
    check Alcotest.int "900 traps silently resumed" 900 (suppressed_at s addr);
    used
  in
  let nub_rpcs = measure `Nub in
  let dbg_rpcs = measure `Debugger in
  check Alcotest.bool
    (Printf.sprintf "nub %d RPCs vs debugger %d: at least 100x fewer" nub_rpcs dbg_rpcs)
    true
    (dbg_rpcs >= 100 * nub_rpcs)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "bpverify"
    [
      ( "verifier",
        [ case "hostile corpus rejected on all targets" test_corpus_rejected;
          case "compiler exemplars accepted" test_exemplars_accepted;
          prop_accepted_never_traps ] );
      ( "evaluator",
        [ case "faults are typed, never hangs" test_eval_faults_are_typed;
          case "division by zero is zero" test_division_by_zero_is_zero ] );
      ( "codec", [ prop_encode_decode_roundtrip; prop_decode_total ] );
      ( "refusal",
        [ case "rejected programs never reach the wire" test_refused_before_the_wire ] );
      ( "differential",
        [ case "nub and debugger sites agree on all targets" test_sites_agree_all_archs;
          case "nub site saves 100x the RPCs" test_nub_site_saves_rpcs ] );
    ]
