(** Tests for lib/machine: instruction encoders (round-trip properties per
    target), RAM, 80-bit floats, CPU semantics including the SIM-MIPS load
    delay slot, processes and the simulated kernel, and the runtime
    procedure table. *)

open Ldb_machine

let check = Alcotest.check

(* --- encoders: roundtrip property per target ------------------------------ *)

let insn_eq (a : Insn.t) b = a = b

let roundtrip_prop arch =
  let target = Target.of_arch arch in
  Testkit.qtest
    (Printf.sprintf "%s encode/decode roundtrip" (Arch.name arch))
    ~count:500
    (QCheck.make (Testkit.gen_insn arch) ~print:Insn.to_string)
    (fun insn ->
      let bytes = Target.encode target insn in
      let fetch i = Char.code bytes.[i] in
      let decoded, len = Target.decode target ~fetch 0 in
      len = String.length bytes && insn_eq decoded insn)

(* Same property at every alignment the target allows: embed the encoding
   at an arbitrary insn_unit-aligned offset in a padded buffer and decode
   at that address.  This is the foundation dbgcheck's disassembly walk
   stands on — instruction boundaries are wherever decoding lands, not
   just address 0. *)
let roundtrip_any_alignment_prop arch =
  let target = Target.of_arch arch in
  let unit = target.Target.insn_unit in
  Testkit.qtest
    (Printf.sprintf "%s roundtrip at any alignment" (Arch.name arch))
    ~count:500
    (QCheck.make
       QCheck.Gen.(pair (Testkit.gen_insn arch) (int_bound 63))
       ~print:(fun (i, k) -> Printf.sprintf "%s @+%d" (Insn.to_string i) (k * unit)))
    (fun (insn, k) ->
      let bytes = Target.encode target insn in
      let addr = k * unit in
      (* fill the padding with nops so every byte is meaningful *)
      let buf = Buffer.create (addr + String.length bytes) in
      while Buffer.length buf < addr do
        Buffer.add_string buf target.Target.nop
      done;
      let buf = Buffer.(add_string buf bytes; contents buf) in
      let fetch i = if i >= 0 && i < String.length buf then Char.code buf.[i] else 0 in
      let decoded, len = Target.decode target ~fetch addr in
      len = String.length bytes && insn_eq decoded insn)

let test_lengths_differ () =
  (* the four targets genuinely differ in instruction width *)
  let nop_len arch = String.length (Target.of_arch arch).Target.nop in
  check Alcotest.int "mips nop" 4 (nop_len Mips);
  check Alcotest.int "sparc nop" 4 (nop_len Sparc);
  check Alcotest.int "m68k nop" 2 (nop_len M68k);
  check Alcotest.int "vax nop" 1 (nop_len Vax)

let test_real_bit_patterns () =
  (* the trap/no-op encodings are the real machines' *)
  check Alcotest.string "mips break" "\x00\x00\x00\x0d" (Target.of_arch Mips).Target.brk;
  check Alcotest.string "sparc nop" "\x01\x00\x00\x00" (Target.of_arch Sparc).Target.nop;
  check Alcotest.string "m68k nop" "\x4e\x71" (Target.of_arch M68k).Target.nop;
  check Alcotest.string "vax bpt" "\x03" (Target.of_arch Vax).Target.brk

let test_nop_brk_same_length () =
  List.iter
    (fun arch ->
      let t = Target.of_arch arch in
      check Alcotest.int
        (Arch.name arch ^ " nop/brk same length")
        (String.length t.Target.nop) (String.length t.Target.brk))
    Arch.all

let test_stop_encoding_derived () =
  (* Target.nop/brk/nop_advance are derived from the encoder at
     registration time; verify the published contract on every target. *)
  List.iter
    (fun arch ->
      let t = Target.of_arch arch in
      let name s = Arch.name arch ^ " " ^ s in
      check Alcotest.string (name "nop = encode Nop") (Target.encode t Insn.Nop) t.Target.nop;
      check Alcotest.string (name "brk = encode Break") (Target.encode t Insn.Break) t.Target.brk;
      check Alcotest.int (name "nop_advance = |nop|") (String.length t.Target.nop)
        t.Target.nop_advance;
      check Alcotest.int (name "nop_advance = length Nop") (Target.insn_length t Insn.Nop)
        t.Target.nop_advance;
      check Alcotest.bool
        (name "nop length is a positive multiple of insn_unit")
        true
        (t.Target.nop_advance > 0 && t.Target.nop_advance mod t.Target.insn_unit = 0);
      let decode_of s =
        Target.decode t ~fetch:(fun i -> if i < String.length s then Char.code s.[i] else 0) 0
      in
      check Alcotest.bool (name "nop decodes to Nop") true
        (decode_of t.Target.nop = (Insn.Nop, t.Target.nop_advance));
      check Alcotest.bool (name "brk decodes to Break") true
        (decode_of t.Target.brk = (Insn.Break, String.length t.Target.brk)))
    Arch.all;
  (* the derivation itself rejects a contract violation *)
  Alcotest.check_raises "insn_unit mismatch rejected"
    (Invalid_argument
       "Target.stop_encoding(vax): nop length 1 is not a positive multiple of insn_unit 2")
    (fun () -> ignore (Target.stop_encoding ~insn_unit:2 (module Enc_vax : Encoder.S)))

let test_bad_encoding_rejected () =
  List.iter
    (fun arch ->
      let target = Target.of_arch arch in
      let junk = "\xff\xff\xff\xff\xff\xff\xff\xff" in
      let fetch i = Char.code junk.[i mod 8] in
      match Target.decode target ~fetch 0 with
      | exception Optab.Bad_encoding _ -> ()
      | _insn, _ -> Alcotest.failf "%s accepted junk" (Arch.name arch))
    Arch.all

(* --- ram -------------------------------------------------------------------- *)

let test_ram_endianness () =
  let big = Ram.create Big and little = Ram.create Little in
  Ram.set_u32 big 0x1000 0xAABBCCDDl;
  Ram.set_u32 little 0x1000 0xAABBCCDDl;
  check Alcotest.int "BE first byte" 0xAA (Ram.get_u8 big 0x1000);
  check Alcotest.int "LE first byte" 0xDD (Ram.get_u8 little 0x1000)

let test_ram_fault () =
  let m = Ram.create Big in
  (match Ram.get_u8 m (-1) with
  | exception Ram.Fault _ -> ()
  | _ -> Alcotest.fail "negative address accepted");
  match Ram.get_u32 m (Ram.Layout.size - 2) with
  | exception Ram.Fault _ -> ()
  | _ -> Alcotest.fail "overrun accepted"

let test_ram_cstring () =
  let m = Ram.create Big in
  Ram.blit_in m ~addr:0x2000 "hello\000world";
  check Alcotest.string "cstring" "hello" (Ram.read_cstring m ~addr:0x2000)

let test_ram_floats () =
  let m = Ram.create Little in
  Ram.set_f64 m 0x100 3.14159;
  check (Alcotest.float 1e-12) "f64" 3.14159 (Ram.get_f64 m 0x100);
  Ram.set_f32 m 0x200 1.5;
  check (Alcotest.float 1e-6) "f32" 1.5 (Ram.get_f32 m 0x200)

(* --- float80 ------------------------------------------------------------------ *)

let test_float80_exact () =
  List.iter
    (fun x ->
      let b = Float80.to_bytes x in
      check Alcotest.int "10 bytes" 10 (String.length b);
      check (Alcotest.float 0.0) "exact roundtrip" x (Float80.of_bytes b))
    [ 0.0; 1.0; -1.0; 3.141592653589793; 1e300; -1e-300; 0.1 ]

let test_float80_specials () =
  check Alcotest.bool "inf" true (Float80.of_bytes (Float80.to_bytes infinity) = infinity);
  check Alcotest.bool "-inf" true
    (Float80.of_bytes (Float80.to_bytes neg_infinity) = neg_infinity);
  check Alcotest.bool "nan" true (Float.is_nan (Float80.of_bytes (Float80.to_bytes nan)))

let prop_float80_roundtrip =
  Testkit.qtest "float80 roundtrip" ~count:500 QCheck.float (fun x ->
      let y = Float80.of_bytes (Float80.to_bytes x) in
      (Float.is_nan x && Float.is_nan y) || x = y)

(* --- cpu semantics -------------------------------------------------------------- *)

(** Assemble a list of instructions at the code base and run until
    Break/exit, returning the CPU. *)
let run_insns arch insns =
  let target = Target.of_arch arch in
  let proc = Proc.create target in
  let buf = Buffer.create 64 in
  List.iter (fun i -> Buffer.add_string buf (Target.encode target i)) insns;
  Ram.blit_in proc.Proc.ram ~addr:Ram.Layout.code_base (Buffer.contents buf);
  Proc.set_pc proc Ram.Layout.code_base;
  ignore (Proc.run ~fuel:10000 proc);
  proc

let test_alu_all_archs () =
  List.iter
    (fun arch ->
      let proc =
        run_insns arch
          [ Insn.Li (1, 20l); Insn.Li (2, 22l); Insn.Alu (Insn.Add, 3, 1, 2);
            Insn.Alui (Insn.Mul, 3, 3, 10l); Insn.Break ]
      in
      check Alcotest.int32 (Arch.name arch ^ " alu") 420l (Cpu.reg proc.Proc.cpu 3))
    Arch.all

let test_load_store_endian_insulated () =
  (* identical code on BE and LE targets computes identical results *)
  List.iter
    (fun arch ->
      let base = Int32.of_int Ram.Layout.data_base in
      let proc =
        run_insns arch
          [ Insn.Li (1, base); Insn.Li (2, 0x11223344l); Insn.Store (Insn.S32, 2, 1, 0l);
            Insn.Load (Insn.S8, 3, 1, 0l); Insn.Nop; Insn.Break ]
      in
      (* the byte at offset 0 differs by endianness: that is real machine
         behaviour, visible to machine code *)
      let expected = if Arch.endian arch = Big then 0x11l else 0x44l in
      check Alcotest.int32 (Arch.name arch ^ " ls byte") expected (Cpu.reg proc.Proc.cpu 3))
    Arch.all

let test_div_by_zero_faults () =
  List.iter
    (fun arch ->
      let proc = run_insns arch [ Insn.Li (1, 5l); Insn.Li (2, 0l); Insn.Alu (Insn.Div, 3, 1, 2) ] in
      match proc.Proc.status with
      | Proc.Stopped (SIGFPE, _) -> ()
      | st ->
          Alcotest.failf "%s: expected SIGFPE, got %s" (Arch.name arch)
            (match st with
            | Proc.Stopped (s, _) -> Signal.name s
            | Proc.Exited n -> Printf.sprintf "exit %d" n
            | Proc.Running -> "running"))
    Arch.all

let test_bad_fetch_faults () =
  List.iter
    (fun arch ->
      let proc = run_insns arch [ Insn.Li (1, 0x7fffff00l); Insn.Jr 1 ] in
      match proc.Proc.status with
      | Proc.Stopped (SIGSEGV, _) -> ()
      | _ -> Alcotest.failf "%s: expected SIGSEGV" (Arch.name arch))
    Arch.all

let test_mips_load_delay () =
  (* the instruction after a load sees the OLD register value *)
  let base = Int32.of_int Ram.Layout.data_base in
  let proc =
    run_insns Mips
      [ Insn.Li (1, base); Insn.Li (2, 777l); Insn.Store (Insn.S32, 2, 1, 0l);
        Insn.Li (3, 111l);
        Insn.Load (Insn.S32, 3, 1, 0l);  (* r3 <- 777, delayed *)
        Insn.Mov (4, 3);                 (* delay slot: sees 111 *)
        Insn.Mov (5, 3);                 (* after: sees 777 *)
        Insn.Break ]
  in
  check Alcotest.int32 "delay slot sees old value" 111l (Cpu.reg proc.Proc.cpu 4);
  check Alcotest.int32 "next insn sees new value" 777l (Cpu.reg proc.Proc.cpu 5)

let test_no_delay_on_others () =
  List.iter
    (fun arch ->
      let base = Int32.of_int Ram.Layout.data_base in
      let proc =
        run_insns arch
          [ Insn.Li (1, base); Insn.Li (2, 777l); Insn.Store (Insn.S32, 2, 1, 0l);
            Insn.Li (3, 111l); Insn.Load (Insn.S32, 3, 1, 0l); Insn.Mov (4, 3); Insn.Break ]
      in
      check Alcotest.int32 (Arch.name arch ^ " no delay") 777l (Cpu.reg proc.Proc.cpu 4))
    [ Sparc; M68k; Vax ]

let test_call_ret_conventions () =
  (* mips/sparc link in a register; m68k/vax push the return address *)
  List.iter
    (fun arch ->
      let target = Target.of_arch arch in
      let cb = Ram.Layout.code_base in
      (* layout: [entry: call f; break] [f: li r1 99; ret] *)
      let call_len = Target.insn_length target (Insn.Call 0l) in
      let brk_len = Target.insn_length target Insn.Break in
      let f_addr = cb + call_len + brk_len in
      let proc =
        run_insns arch
          [ Insn.Call (Int32.of_int f_addr); Insn.Break; Insn.Li (1, 99l); Insn.Ret ]
      in
      check Alcotest.int32 (Arch.name arch ^ " call/ret") 99l (Cpu.reg proc.Proc.cpu 1);
      (* stopped at the Break after the call *)
      check Alcotest.int (Arch.name arch ^ " return pc") (cb + call_len) (Proc.pc proc))
    Arch.all

(* --- processes and the kernel ------------------------------------------------- *)

let test_printf_syscall () =
  List.iter
    (fun arch ->
      let target = Target.of_arch arch in
      let proc = Proc.create target in
      let fmt_addr = Ram.Layout.data_base in
      Ram.blit_in proc.Proc.ram ~addr:fmt_addr "x=%d y=%s f=%g!\000";
      Ram.blit_in proc.Proc.ram ~addr:(fmt_addr + 64) "str\000";
      let sys = Ram.Layout.sysarg_base in
      Ram.set_u32 proc.Proc.ram sys (Int32.of_int fmt_addr);
      Ram.set_u32 proc.Proc.ram (sys + 4) 42l;
      Ram.set_u32 proc.Proc.ram (sys + 8) (Int32.of_int (fmt_addr + 64));
      Ram.set_f64 proc.Proc.ram (sys + 12) 2.5;
      Proc.do_syscall proc Proc.Sys_abi.printf;
      check Alcotest.string (Arch.name arch ^ " printf") "x=42 y=str f=2.5!" (Proc.output proc))
    Arch.all

let test_rpt_roundtrip () =
  let ram = Ram.create Big in
  let entries =
    [ { Rpt.addr = 0x1000; frame_size = 32; ra_offset = 28 };
      { Rpt.addr = 0x1100; frame_size = 64; ra_offset = 60 } ]
  in
  Rpt.write ram entries;
  let back = Rpt.read (fun a -> Ram.get_u32 ram a) in
  check Alcotest.int "count" 2 (List.length back);
  check Alcotest.bool "same" true (back = entries);
  match Rpt.find back ~pc:0x1104 with
  | Some e -> check Alcotest.int "find" 0x1100 e.Rpt.addr
  | None -> Alcotest.fail "find failed"

let () =
  Alcotest.run "machine"
    [
      ( "encoders",
        List.map roundtrip_prop Arch.all
        @ List.map roundtrip_any_alignment_prop Arch.all
        @ [
            Alcotest.test_case "instruction widths differ" `Quick test_lengths_differ;
            Alcotest.test_case "real trap/no-op bit patterns" `Quick test_real_bit_patterns;
            Alcotest.test_case "nop/brk same length" `Quick test_nop_brk_same_length;
            Alcotest.test_case "stop encodings derived from encoder" `Quick
              test_stop_encoding_derived;
            Alcotest.test_case "bad encodings rejected" `Quick test_bad_encoding_rejected;
          ] );
      ( "ram",
        [
          Alcotest.test_case "endianness" `Quick test_ram_endianness;
          Alcotest.test_case "faults" `Quick test_ram_fault;
          Alcotest.test_case "cstring" `Quick test_ram_cstring;
          Alcotest.test_case "floats" `Quick test_ram_floats;
        ] );
      ( "float80",
        [
          Alcotest.test_case "exact roundtrip" `Quick test_float80_exact;
          Alcotest.test_case "specials" `Quick test_float80_specials;
          prop_float80_roundtrip;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "alu on all targets" `Quick test_alu_all_archs;
          Alcotest.test_case "load/store endianness" `Quick test_load_store_endian_insulated;
          Alcotest.test_case "divide by zero faults" `Quick test_div_by_zero_faults;
          Alcotest.test_case "bad fetch faults" `Quick test_bad_fetch_faults;
          Alcotest.test_case "mips load delay slot" `Quick test_mips_load_delay;
          Alcotest.test_case "no delay elsewhere" `Quick test_no_delay_on_others;
          Alcotest.test_case "call/ret conventions" `Quick test_call_ret_conventions;
        ] );
      ( "proc",
        [
          Alcotest.test_case "printf syscall" `Quick test_printf_syscall;
          Alcotest.test_case "runtime procedure table" `Quick test_rpt_roundtrip;
        ] );
    ]
