(** The ldb command line: compile a C program for a simulated target,
    start it under the nub, and debug it interactively — or, with
    [-core FILE], examine a core dump post-mortem.

    Commands:
      break <func> | break :<line>   plant a breakpoint (at no-ops only)
      break <spec> if <expr>         conditional: the condition is compiled to
                                     bytecode, verified, and shipped to the nub
      info breaks                    list breakpoints; conditions show their
                                     evaluation site and suppressed-trap count
      clear                          remove all breakpoints
      run / continue (c)             resume execution
      step (s) / stepi (si)          source-level / instruction-level step
      where / bt                     current stop / backtrace
      print (p) <name>               print a variable via its PostScript printer
      eval (e) <expr>                evaluate a C expression (expression server)
      set <name> = <int>             assign to a scalar variable
      regs                           dump general-purpose registers
      disas [addr]                   disassemble at addr (default: pc)
      arch                           show target architecture
      core <file>                    write a core dump of the stopped target
      report                         one-shot crash report (best-effort)
      record [spacing]               start recording for time travel; the nub
                                     logs every state change and checkpoints
                                     every [spacing] instructions (default 64)
      rstep (rsi)                    step one instruction backwards
      rcontinue (rc)                 run backwards to the previous stop
      rwatch <name>                  run back to the last write of a variable
      present                        return from history to the live process
      detach / kill / quit           connection control

    The reverse commands replay the recording from the nearest
    checkpoint; every inspection command (where, bt, print, disas,
    regs, eval) works unchanged at any historical instant.  Commands
    that change state — continue, step, set, break — return the session
    to the present first. *)

open Ldb_ldb

let read_file path = In_channel.with_open_text path In_channel.input_all

(** The interactive loop, shared by live and post-mortem sessions.
    [proc] is the simulated process when there is one (live sessions);
    post-mortem sessions have only the dump. *)
let repl d tg0 sess ~(proc : Host.process option) =
  let finished = ref false in
  (* [cur] is what inspection commands look at: the live target, or a
     historical one materialized by the replay session *)
  let cur = ref tg0 in
  let replay : Replay.t option ref = ref None in
  (* the image is needed to open a replay session over a fetched trace *)
  let image =
    match proc with
    | Some p -> Some (Ldb.load_image d ~loader_ps:p.Host.hp_loader_ps)
    | None -> None
  in
  let to_present ~quiet =
    match !replay with
    | None -> ()
    | Some rp ->
        (match Replay.target rp with Some t -> Ldb.remove_target d t | None -> ());
        replay := None;
        cur := tg0;
        if not quiet then print_endline "(back in the present)"
  in
  (* open (or reuse) a replay session over the live target's recording;
     a fresh fetch each time it is opened picks up everything recorded
     since the last trip into history *)
  let ensure_replay () =
    match !replay with
    | Some rp -> Ok rp
    | None -> (
        match image with
        | None -> Error "time travel needs a live recorded process"
        | Some image -> (
            let bytes = Ldb.trace_bytes tg0 in
            match Replay.of_string d ~name:"replay" ~image bytes with
            | Ok (rp, warns) ->
                List.iter
                  (fun w ->
                    Printf.printf "  ! salvage: %s\n"
                      (Ldb_nub.Trace.salvage_to_string w))
                  warns;
                replay := Some rp;
                Ok rp
            | Error e -> Error (Replay.error_to_string e)))
  in
  let reverse motion =
    match ensure_replay () with
    | Error m -> Printf.printf "ldb: %s\n" m
    | Ok rp -> (
        match motion rp with
        | Ok t ->
            cur := t;
            Printf.printf "[%s]\n" (Replay.describe rp);
            print_endline (Ldb.where d t)
        | Error `End_of_history ->
            Printf.printf "ldb: %s\n" (Replay.error_to_string `End_of_history)
        | Error e -> Printf.printf "ldb: %s\n" (Replay.error_to_string e))
  in
  (* post-mortem queries may have tolerated damaged bytes; surface the
     per-query warnings the way the answer itself was printed *)
  let flush_salvage () =
    List.iter (fun w -> Printf.printf "  ! salvage: %s\n" w) (Ldb.take_salvage !cur)
  in
  let dead m = Printf.printf "ldb: %s\n" m in
  while not !finished do
    Printf.printf "(ldb) %!";
    match In_channel.input_line stdin with
    | None -> finished := true
    | Some line ->
        (let words =
           String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
         in
         (* state-changing commands act on the live process: leave
            history before dispatching them *)
         (match words with
         | ("run" | "continue" | "c" | "step" | "s" | "stepi" | "si" | "set"
           | "break" | "b" | "clear" | "kill" | "detach" | "record")
           :: _ ->
             to_present ~quiet:false
         | _ -> ());
         try
           let tg = !cur in
           match words with
           | [] -> ()
           | [ "quit" ] | [ "q" ] -> finished := true
           | [ "arch" ] -> print_endline (Ldb_machine.Arch.name tg.Ldb.tg_arch)
           | [ "break"; spec ] | [ "b"; spec ] ->
               if String.length spec > 0 && spec.[0] = ':' then begin
                 let line = int_of_string (String.sub spec 1 (String.length spec - 1)) in
                 let addrs = Ldb.break_line d tg ~line in
                 List.iter (Printf.printf "breakpoint at %#x\n") addrs
               end
               else Printf.printf "breakpoint at %#x\n" (Ldb.break_function d tg spec)
           | "break" :: spec :: "if" :: (_ :: _ as rest)
           | "b" :: spec :: "if" :: (_ :: _ as rest) ->
               let expr = String.concat " " rest in
               let addrs =
                 if String.length spec > 0 && spec.[0] = ':' then
                   let line = int_of_string (String.sub spec 1 (String.length spec - 1)) in
                   Ldb.break_line d tg ~line
                 else [ Ldb.break_function d tg spec ]
               in
               List.iter
                 (fun addr ->
                   match Ldb_exprserver.Eval.compile_condition d tg sess ~addr expr with
                   | Ok prog -> (
                       match Ldb.set_condition d tg ~addr ~text:expr prog with
                       | Ok `Nub ->
                           Printf.printf "breakpoint at %#x if %s (condition runs on the nub)\n"
                             addr expr
                       | Ok `Debugger ->
                           Printf.printf
                             "breakpoint at %#x if %s (condition runs in the debugger)\n" addr
                             expr
                       | Error (`Unverified fs) ->
                           Printf.printf "ldb: condition rejected by the verifier:\n";
                           List.iter
                             (fun f ->
                               Printf.printf "  %s\n" (Ldb_nub.Bpverify.finding_to_string f))
                             fs)
                   | Error (`Unverified fs) ->
                       Printf.printf "ldb: condition rejected by the verifier:\n";
                       List.iter
                         (fun f ->
                           Printf.printf "  %s\n" (Ldb_nub.Bpverify.finding_to_string f))
                         fs
                   | Error (`Unsupported m) ->
                       Printf.printf "ldb: condition cannot compile to nub bytecode: %s\n" m
                   | Error (`Error m) -> Printf.printf "ldb: %s\n" m)
                 addrs
           | [ "info" ] | [ "info"; "breaks" ] ->
               Hashtbl.iter
                 (fun addr (bp : Breakpoint.t) ->
                   match bp.Breakpoint.bp_cond with
                   | Some c ->
                       Printf.printf
                         "breakpoint at %#x if %s (%s side, %d trap%s silently resumed)\n"
                         addr c.Breakpoint.c_text
                         (match c.Breakpoint.c_site with
                         | `Nub -> "nub"
                         | `Debugger -> "debugger")
                         c.Breakpoint.c_suppressed
                         (if c.Breakpoint.c_suppressed = 1 then "" else "s")
                   | None -> Printf.printf "breakpoint at %#x\n" addr)
                 tg.Ldb.tg_breaks
           | [ "clear" ] -> Breakpoint.remove_all tg.Ldb.tg_breaks tg.Ldb.tg_wire
           | [ "run" ] | [ "continue" ] | [ "c" ] -> (
               match Ldb.continue_ d tg with
               | Ok (Ldb.Exited n) ->
                   Printf.printf "program exited with status %d\n" n;
                   (match proc with
                   | Some p ->
                       let out = Ldb_machine.Proc.output p.Host.hp_proc in
                       if out <> "" then Printf.printf "--- program output ---\n%s" out
                   | None -> ())
               | Ok _ -> print_endline (Ldb.where d tg)
               | Error (`Dead_process m) -> dead m)
           | [ "step" ] | [ "s" ] -> (
               match Ldb.step_source d tg with
               | Ok (Ldb.Exited n) -> Printf.printf "program exited with status %d\n" n
               | Ok _ -> print_endline (Ldb.where d tg)
               | Error (`Dead_process m) -> dead m)
           | [ "stepi" ] | [ "si" ] -> (
               match Ldb.step_instruction d tg with
               | Ok (Ldb.Exited n) -> Printf.printf "program exited with status %d\n" n
               | Ok _ -> print_endline (Ldb.where d tg)
               | Error (`Dead_process m) -> dead m)
           | [ "disas" ] | [ "disas"; _ ] -> (
               let addr =
                 match words with
                 | [ _; spec ] -> int_of_string spec
                 | _ -> (Ldb.top_frame d tg).Frame.fr_pc
               in
               print_endline (Disas.to_string (Ldb.disassemble d tg ~addr ~count:8)))
           | [ "where" ] -> print_endline (Ldb.where d tg)
           | [ "bt" ] | [ "backtrace" ] ->
               List.iteri
                 (fun i fr ->
                   Printf.printf "#%d %s (pc=%#x base=%#x)\n" i (Ldb.frame_function d tg fr)
                     fr.Frame.fr_pc fr.Frame.fr_base)
                 (Ldb.backtrace d tg)
           | [ "print"; name ] | [ "p"; name ] ->
               Printf.printf "%s = %s\n" name (Ldb.print_value d tg (Ldb.top_frame d tg) name)
           | "eval" :: rest | "e" :: rest ->
               let expr = String.concat " " rest in
               let v, ty =
                 Ldb_exprserver.Eval.evaluate d tg (Ldb.top_frame d tg) sess expr
               in
               Printf.printf "(%s) %s\n" ty v
           | [ "set"; name; "="; v ] -> (
               match Ldb.assign_int d tg (Ldb.top_frame d tg) name (int_of_string v) with
               | Ok () -> ()
               | Error (`Dead_process m) -> dead m)
           | [ "regs" ] ->
               let fr = Ldb.top_frame d tg in
               let t = tg.Ldb.tg_tdesc in
               for r = 0 to Ldb_machine.Target.nregs t - 1 do
                 Printf.printf "%4s=%08x%s"
                   (Ldb_machine.Target.reg_name t r)
                   (Frame.fetch_reg fr r)
                   (if r mod 4 = 3 then "\n" else " ")
               done
           | [ "core"; path ] ->
               let bytes = Ldb.core_bytes tg in
               Out_channel.with_open_bin path (fun oc ->
                   Out_channel.output_string oc bytes);
               Printf.printf "wrote %d-byte core to %s\n" (String.length bytes) path
           | [ "report" ] -> (
               match Ldb.crash_report d tg with
               | `Full r -> print_string (Ldb.render_crash_report r)
               | `Salvage r ->
                   print_string (Ldb.render_crash_report r);
                   print_endline "(report assembled in salvage mode)")
           | [ "record" ] | [ "record"; _ ] ->
               let spacing = match words with [ _; s ] -> int_of_string s | _ -> 64 in
               Ldb.start_record tg ~spacing;
               Printf.printf "recording (checkpoint every %d instructions)\n" spacing
           | [ "rstep" ] | [ "rsi" ] -> reverse Replay.rstep
           | [ "rcontinue" ] | [ "rc" ] -> reverse Replay.rcontinue
           | [ "rwatch"; name ] -> (
               match Ldb.variable_range d tg (Ldb.top_frame d tg) name with
               | Error m -> Printf.printf "ldb: %s\n" m
               | Ok (_space, addr, size) ->
                   Printf.printf "running back to the last write of %s (%d byte%s at %#x)\n"
                     name size
                     (if size = 1 then "" else "s")
                     addr;
                   reverse (fun rp ->
                       Result.map fst (Replay.run_back_to_write rp ~addr ~size)))
           | [ "present" ] ->
               to_present ~quiet:true;
               print_endline (Ldb.where d !cur)
           | [ "detach" ] -> Ldb.detach tg
           | [ "kill" ] ->
               Ldb.kill tg;
               finished := true
           | _ -> Printf.printf "unknown command: %s\n" line
         with
         | Failure _ ->
             (* e.g. int_of_string on `break :abc` — complain, don't die *)
             Printf.printf "ldb: bad number in command: %s\n" line
         | Ldb.Error m -> Printf.printf "ldb: %s\n" m
         | Coredump.Dead_process m -> Printf.printf "ldb: %s\n" m
         | Transport.Error (_, m) -> Printf.printf "ldb: %s\n" m
         | Breakpoint.Error m -> Printf.printf "ldb: %s\n" m
         | Ldb_exprserver.Eval.Error m -> Printf.printf "ldb: %s\n" m
         | Ldb_exprserver.Exprserver.Error m -> Printf.printf "ldb: %s\n" m);
        flush_salvage ()
  done

let run_session ~arch ~sources =
  let d = Ldb.create () in
  let proc, tg = Host.spawn d ~arch ~name:"cli" sources in
  let sess = Ldb_exprserver.Eval.start ~arch in
  Printf.printf "ldb: target %s, %d bytes of code, stopped before main\n%!"
    (Ldb_machine.Arch.name arch)
    (String.length proc.Host.hp_image.Ldb_link.Link.i_code);
  repl d tg sess ~proc:(Some proc)

(** Server demo: [n] sessions of one program through a single supervised
    server, sharing the image cache.  Each session stops in main and
    reports its frame; the session table and cache stats follow. *)
let run_server_demo ~arch ~sources ~n =
  let image = Host.build_image ~arch sources in
  let sv = Server.create ~limits:{ Server.default_limits with Server.li_max_sessions = n } () in
  (* the expression server lives a library above lib/ldb, so the
     condition compiler is injected here, where both are in scope *)
  let esess = Ldb_exprserver.Eval.start ~arch in
  Server.set_cond_compiler sv (fun d tg ~addr cond ->
      Ldb_exprserver.Eval.compile_condition d tg esess ~addr cond);
  let ids =
    List.init n (fun i ->
        let p = Host.launch_image image in
        match
          Server.open_session sv
            ~name:(Printf.sprintf "session-%d" i)
            ~loader_ps:p.Host.hp_loader_ps (Host.open_channel p)
        with
        | Ok id -> id
        | Error r ->
            Printf.eprintf "ldb: open refused: %s\n" (Server.refusal_to_string r);
            exit 1)
  in
  List.iter
    (fun id ->
      let run cmd =
        match Server.exec sv id cmd with
        | Ok r -> Server.reply_to_string r
        | Error r -> Server.refusal_to_string r
      in
      ignore (run (Server.Break_function "main") : string);
      ignore (run Server.Continue : string);
      Printf.printf "session %d: %s\n" id (run Server.Where))
    ids;
  print_newline ();
  print_string (Server.render_sessions sv);
  let st = Server.stats sv in
  Printf.printf
    "opened %d, image cache %d hit%s / %d load%s, downs %d, failed %d\n"
    st.Server.sv_opened st.Server.sv_cache_hits
    (if st.Server.sv_cache_hits = 1 then "" else "s")
    st.Server.sv_cache_misses
    (if st.Server.sv_cache_misses = 1 then "" else "s")
    st.Server.sv_downs st.Server.sv_failed;
  List.iter (fun id -> Server.close_session ~kill:true sv id) ids

(* --- the wire daemon and its scripted client -------------------------------- *)

(** A Unix socket as an {!Evloop.io}: non-blocking reads (the loop polls),
    buffered non-blocking writes, EOF and errors folding into [io_alive].

    The writer must never block the single-threaded daemon loop: a client
    that sends commands without ever reading its socket fills the kernel
    buffer, and a write that waited for it would wedge every other
    connection.  Outbound bytes the socket will not take are buffered
    here instead, flushed opportunistically on every write and on every
    per-tick read; a peer whose buffer grows past [max_pending] or whose
    flush makes no progress for [write_deadline] seconds is declared dead
    — the loop then releases that one connection via [io_alive]. *)
let io_of_fd ~(label : string) (fd : Unix.file_descr) : Evloop.io =
  Unix.set_nonblock fd;
  let alive = ref true in
  let buf = Bytes.create 4096 in
  let pending = Buffer.create 256 in
  let max_pending = 1 lsl 18 in
  let write_deadline = 10.0 in
  let stalled_since = ref None in
  let kill () =
    alive := false;
    Buffer.clear pending
  in
  let flush () =
    if !alive && Buffer.length pending > 0 then begin
      let b = Buffer.to_bytes pending in
      let len = Bytes.length b in
      let pos = ref 0 in
      let blocked = ref false in
      while !alive && (not !blocked) && !pos < len do
        match Unix.write fd b !pos (len - !pos) with
        | 0 -> blocked := true
        | n -> pos := !pos + n
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            blocked := true
        | exception Unix.Unix_error (_, _, _) -> kill ()
      done;
      if !alive then
        if !pos >= len then begin
          Buffer.clear pending;
          stalled_since := None
        end
        else begin
          Buffer.clear pending;
          Buffer.add_subbytes pending b !pos (len - !pos);
          if !pos > 0 then stalled_since := None;
          match !stalled_since with
          | None -> stalled_since := Some (Unix.gettimeofday ())
          | Some t0 ->
              if Unix.gettimeofday () -. t0 > write_deadline then kill ()
        end
    end
  in
  {
    Evloop.io_label = label;
    io_read =
      (fun () ->
        (* the loop reads every tick: piggyback the outbound flush *)
        flush ();
        if not !alive then ""
        else
          let rec drain acc =
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 ->
                alive := false;
                acc
            | n ->
                let acc = acc ^ Bytes.sub_string buf 0 n in
                if n = Bytes.length buf then drain acc else acc
            | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> acc
            | exception Unix.Unix_error (_, _, _) ->
                alive := false;
                acc
          in
          drain "");
    io_write =
      (fun s ->
        if !alive then
          if Buffer.length pending + String.length s > max_pending then kill ()
          else begin
            Buffer.add_string pending s;
            flush ()
          end);
    io_alive = (fun () -> !alive);
    io_close =
      (fun () ->
        if !alive then begin
          (* a last best-effort flush so goodbyes tend to arrive *)
          flush ();
          alive := false
        end;
        try Unix.close fd with _ -> ());
  }

(** [-listen PATH]: serve the wire protocol on a Unix-domain socket.  One
    image is built up front; every accepted connection that completes the
    hello gets a fresh process of it as its own supervised session.
    SIGTERM/SIGINT trigger the graceful drain. *)
let run_listen ~arch ~sources ~path =
  let image = Host.build_image ~arch sources in
  let sv = Server.create () in
  let esess = Ldb_exprserver.Eval.start ~arch in
  Server.set_cond_compiler sv (fun d tg ~addr cond ->
      Ldb_exprserver.Eval.compile_condition d tg esess ~addr cond);
  (* the daemon ticks every ~10ms, so the loop's tick-denominated limits
     must be rescaled to wall-clock terms: the test-suite defaults
     (idle_timeout = 64 ticks ≈ 0.6s) would reap any client that pauses
     for under a second between commands — a human at -connect, or a
     script with any delay.  Here a torn frame gets ~3s to complete and
     a silent connection ~5 minutes before half-open reaping. *)
  let limits =
    {
      Evloop.default_limits with
      Evloop.el_read_deadline = 300;
      el_idle_timeout = 30_000;
      el_drain_deadline = 2_000;
    }
  in
  let loop =
    Evloop.create ~limits sv ~bind:(fun ~conn_id ->
        let p = Host.launch_image image in
        Server.open_session sv
          ~name:(Printf.sprintf "conn-%d" conn_id)
          ~loader_ps:p.Host.hp_loader_ps (Host.open_channel p))
  in
  (try Unix.unlink path with _ -> ());
  let lsock = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind lsock (ADDR_UNIX path);
  Unix.listen lsock 16;
  Unix.set_nonblock lsock;
  let stop = ref false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  (* a peer that disconnects with replies still buffered must be an
     EPIPE folded into [io_alive], not a SIGPIPE death of the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Printf.printf "ldb: listening on %s (%s)\n%!" path (Ldb_machine.Arch.name arch);
  while not !stop do
    (match Unix.accept lsock with
    | fd, _ -> ignore (Evloop.accept loop (io_of_fd ~label:path fd))
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ());
    Evloop.tick loop;
    (* one tick per ~10ms keeps deadlines meaningful in wall-clock terms
       without burning a core while idle *)
    try ignore (Unix.select [] [] [] 0.01)
    with Unix.Unix_error (EINTR, _, _) -> ()
  done;
  print_endline "ldb: draining";
  let rep = Evloop.drain loop in
  (try Unix.close lsock with _ -> ());
  (try Unix.unlink path with _ -> ());
  Printf.printf "ldb: drain %s: %d session%s detached, %d salvaged, %d connection%s closed\n%!"
    (if rep.Evloop.dr_completed then "complete" else "deadline expired")
    rep.Evloop.dr_detached
    (if rep.Evloop.dr_detached = 1 then "" else "s")
    rep.Evloop.dr_salvaged rep.Evloop.dr_conns_closed
    (if rep.Evloop.dr_conns_closed = 1 then "" else "s")

(** [-connect PATH]: a scripted wire client.  Lines on stdin become
    commands ([break f], [break :N], [continue], [step], [where], [bt],
    [print v], [read v], [core], [detach], [kill], [bye]); every server
    message is printed as one line.  This is the CI smoke driver, not an
    interactive debugger — the REPL stays on the in-process path. *)
let run_connect ~path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "ldb: cannot connect to %s: %s\n" path (Unix.error_message e);
     exit 1);
  let rx = ref "" in
  let seq = ref 0 in
  (* a server that vanished mid-write must be a printable error, not a
     SIGPIPE death *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* a short write would tear the frame and desynchronize the stream:
     loop until the whole frame is out, retrying interrupts.  Returns
     [false] when the server is gone. *)
  let send m =
    let frame = Swire.seal ~seq:!seq (Swire.encode_client m) in
    incr seq;
    let len = String.length frame in
    let pos = ref 0 in
    try
      while !pos < len do
        match Unix.write_substring fd frame !pos (len - !pos) with
        | n -> pos := !pos + n
        | exception Unix.Unix_error (EINTR, _, _) -> ()
      done;
      true
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "ldb: write to server failed: %s\n" (Unix.error_message e);
      false
  in
  let buf = Bytes.create 4096 in
  let rec recv_msg () =
    match Swire.scan ~max_payload:Swire.max_server_payload !rx with
    | Swire.S_frame { payload; used; _ } -> (
        rx := String.sub !rx used (String.length !rx - used);
        match Swire.decode_server payload with
        | Ok m -> Some m
        | Error e ->
            Printf.printf "client: %s\n" (Swire.error_to_string e);
            recv_msg ())
    | Swire.S_skip { skip; error } ->
        rx := String.sub !rx skip (String.length !rx - skip);
        Printf.printf "client: %s\n" (Swire.error_to_string error);
        recv_msg ()
    | Swire.S_need -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> None
        | n ->
            rx := !rx ^ Bytes.sub_string buf 0 n;
            recv_msg ()
        | exception Unix.Unix_error (EINTR, _, _) -> recv_msg ()
        | exception Unix.Unix_error (_, _, _) -> None)
  in
  let say m = print_endline (Swire.server_msg_to_string m) in
  if not (send (Swire.C_hello { magic = Swire.version_magic })) then exit 1;
  (match recv_msg () with
  | Some (Swire.S_hello _ as m) -> say m
  | Some m ->
      say m;
      exit 1
  | None ->
      prerr_endline "ldb: server closed the connection";
      exit 1);
  let parse words =
    match words with
    | [ "break"; spec ] when String.length spec > 0 && spec.[0] = ':' ->
        (* total: `break :abc` is an unknown command, not a crash *)
        Option.map
          (fun line -> Server.Break_line { file = None; line })
          (int_of_string_opt (String.sub spec 1 (String.length spec - 1)))
    | [ "break"; f ] -> Some (Server.Break_function f)
    | [ "continue" ] | [ "c" ] -> Some Server.Continue
    | [ "step" ] | [ "s" ] -> Some Server.Step_source
    | [ "where" ] -> Some Server.Where
    | [ "bt" ] | [ "backtrace" ] -> Some Server.Backtrace
    | [ "print"; v ] | [ "p"; v ] -> Some (Server.Print v)
    | [ "read"; v ] -> Some (Server.Read_int v)
    | [ "core" ] -> Some Server.Fetch_core
    | [ "detach" ] -> Some Server.Detach
    | [ "kill" ] -> Some Server.Kill
    | _ -> None
  in
  let finished = ref false in
  while not !finished do
    match In_channel.input_line stdin with
    | None | Some "bye" | Some "quit" ->
        finished := true;
        if send Swire.C_bye then (
          match recv_msg () with Some m -> say m | None -> ())
    | Some line -> (
        let words =
          String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
        in
        match words with
        | [] -> ()
        | _ -> (
            match parse words with
            | None -> Printf.printf "client: unknown command %S\n" line
            | Some cmd ->
                if not (send (Swire.C_cmd cmd)) then begin
                  prerr_endline "ldb: server closed the connection";
                  finished := true
                end
                else (
                  match recv_msg () with
                  | Some m -> say m
                  | None ->
                      prerr_endline "ldb: server closed the connection";
                      finished := true)))
  done;
  try Unix.close fd with _ -> ()

(** Post-mortem: rebuild the symbol tables from the same sources and open
    the dump as a read-only target.  The architecture comes from the dump
    itself; [-a] is ignored when it disagrees. *)
let run_core_session ~core_path ~sources =
  let raw = In_channel.with_open_bin core_path In_channel.input_all in
  match Ldb_machine.Core.of_string raw with
  | Error m ->
      Printf.eprintf "ldb: %s is not a usable core: %s\n" core_path m;
      exit 1
  | Ok (core, warnings) ->
      let arch = core.Ldb_machine.Core.co_arch in
      let _, loader_ps = Ldb_link.Driver.build ~arch sources in
      let d = Ldb.create () in
      let tg = Ldb.connect_core d ~name:(Filename.basename core_path) ~loader_ps
          (core, warnings) in
      let sess = Ldb_exprserver.Eval.start ~arch in
      Printf.printf "ldb: post-mortem on %s (%s), fault %s (code %#x)\n%!"
        core_path
        (Ldb_machine.Arch.name arch)
        (match Ldb_machine.Signal.of_number core.Ldb_machine.Core.co_signal with
        | Some s -> Ldb_machine.Signal.name s
        | None -> Printf.sprintf "signal %d" core.Ldb_machine.Core.co_signal)
        core.Ldb_machine.Core.co_code;
      List.iter
        (fun w ->
          Printf.printf "  ! salvage: %s\n" (Ldb_machine.Core.salvage_to_string w))
        warnings;
      repl d tg sess ~proc:None

open Cmdliner

let arch_arg =
  let parse s =
    match Ldb_machine.Arch.of_name s with
    | Some a -> Ok a
    | None -> Error (`Msg ("unknown architecture " ^ s))
  in
  let print ppf a = Fmt.string ppf (Ldb_machine.Arch.name a) in
  Arg.conv (parse, print)

let arch_t =
  Arg.(value & opt arch_arg Ldb_machine.Arch.Mips
       & info [ "a"; "arch" ] ~docv:"ARCH" ~doc:"Target architecture: mips, sparc, m68k, vax.")

let core_t =
  Arg.(value & opt (some file) None
       & info [ "core" ] ~docv:"CORE"
           ~doc:"Examine a core dump post-mortem instead of running the program. \
                 The source files are still required to rebuild the symbol tables.")

let serve_t =
  Arg.(value & opt (some int) None
       & info [ "serve" ] ~docv:"N"
           ~doc:"Instead of one interactive session, run $(docv) sessions of the \
                 program through one supervised debug server sharing an image \
                 cache, and print the session table and server stats.")

let listen_t =
  Arg.(value & opt (some string) None
       & info [ "listen" ] ~docv:"SOCKET"
           ~doc:"Run as a wire daemon on a Unix-domain socket: every connection \
                 speaking the framed LDBSRV1 protocol gets its own supervised \
                 session of the program. SIGTERM drains gracefully.")

let connect_t =
  Arg.(value & opt (some string) None
       & info [ "connect" ] ~docv:"SOCKET"
           ~doc:"Connect to a $(b,--listen) daemon as a scripted wire client: \
                 commands on stdin, one reply line per command.")

let files_t =
  (* not non_empty: -connect needs no sources (the daemon has them) *)
  Arg.(value & pos_all file [] & info [] ~docv:"FILE.c" ~doc:"C source files to debug.")

let main arch core serve listen connect files =
  match connect with
  | Some path -> run_connect ~path
  | None -> (
      if files = [] then begin
        Printf.eprintf "ldb: no source files (required unless -connect)\n";
        exit 1
      end;
      let sources = List.map (fun f -> (Filename.basename f, read_file f)) files in
      try
        match (core, serve, listen) with
        | Some core_path, _, _ -> run_core_session ~core_path ~sources
        | None, _, Some path -> run_listen ~arch ~sources ~path
        | None, Some n, None -> run_server_demo ~arch ~sources ~n
        | None, None, None -> run_session ~arch ~sources
      with
      | Ldb_cc.Compile.Error m -> Printf.eprintf "ldb: %s\n" m; exit 1
      | Ldb_link.Link.Error m -> Printf.eprintf "ldb: %s\n" m; exit 1)

let cmd =
  let doc = "a retargetable source-level debugger for simulated targets" in
  Cmd.v (Cmd.info "ldb" ~doc)
    Term.(const main $ arch_t $ core_t $ serve_t $ listen_t $ connect_t $ files_t)

let () =
  (* accept the traditional single-dash spellings: ldb -core FILE, -serve N,
     -listen SOCK, -connect SOCK *)
  let argv =
    Array.map
      (fun a ->
        match a with
        | "-core" -> "--core"
        | "-serve" -> "--serve"
        | "-listen" -> "--listen"
        | "-connect" -> "--connect"
        | a -> a)
      Sys.argv
  in
  exit (Cmd.eval ~argv cmd)
