(** pslint: command-line front end of the static PostScript verifier.

    Usage:
      pslint [options] [file.ps ...]
        -json       machine-readable output (one JSON array)
        -bare       do not preload the shared prelude / debugger names
        -no-deep    skip stored-but-unexecuted procedure bodies
        -ignore K   drop findings of kind K (repeatable; see Lattice.kind_name)
        -prelude    check the shared prelude itself
        -examples   compile the built-in example programs for every target
                    and check each emitted symbol table
    Exit status is 1 when any finding survives the filters, 0 otherwise. *)

module L = Ldb_pscheck.Lattice
module C = Ldb_pscheck.Pscheck

let example_sources : (string * string) list =
  [
    ( "fib.c",
      {|
void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i; for (i=2; i<n; i++) a[i] = a[i-1] + a[i-2]; }
    { int j; for (j=0; j<n; j++) printf("%d ", a[j]); }
    printf("\n");
}
int main(void) { fib(10); return 0; }
|}
    );
    ( "structs.c",
      {|
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; char tag; };
static struct rect r;
double scale(double f, int k) { return f * k + 0.5; }
char *name(void) { return "rect"; }
int main(void)
{
    struct point p;
    double d;
    p.x = 3; p.y = 4;
    r.lo = p;
    r.hi.x = 7; r.hi.y = 8;
    r.tag = 'r';
    d = scale(1.5, 2);
    printf("%d %d\n", r.hi.x - r.lo.x, r.hi.y - r.lo.y);
    return (int) d;
}
|}
    );
  ]

let check_emitted ~deep findings_out =
  List.iter
    (fun arch ->
      List.iter
        (fun (file, src) ->
          let saved = !Ldb_cc.Psemit.lint_enabled in
          Ldb_cc.Psemit.lint_enabled := false;
          let o =
            Fun.protect
              ~finally:(fun () -> Ldb_cc.Psemit.lint_enabled := saved)
              (fun () -> Ldb_cc.Compile.compile ~defer:false ~arch ~file src)
          in
          match o.Ldb_cc.Asm.o_ps with
          | None -> ()
          | Some ps ->
              let env = C.debugger_env () in
              let name =
                Printf.sprintf "%s@%s" file (Ldb_machine.Arch.name arch)
              in
              findings_out := !findings_out @ C.check_program ~env ~deep ~name ps.Ldb_cc.Asm.pp_defs)
        example_sources)
    Ldb_machine.Arch.all

let () =
  let json = ref false in
  let bare = ref false in
  let deep = ref true in
  let ignored = ref [] in
  let do_prelude = ref false in
  let do_examples = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "-json" :: rest -> json := true; parse rest
    | "-bare" :: rest -> bare := true; parse rest
    | "-no-deep" :: rest -> deep := false; parse rest
    | "-prelude" :: rest -> do_prelude := true; parse rest
    | "-examples" :: rest -> do_examples := true; parse rest
    | "-ignore" :: k :: rest -> (
        match L.kind_of_name k with
        | Some kind -> ignored := kind :: !ignored; parse rest
        | None ->
            Printf.eprintf "pslint: unknown finding kind %s\n" k;
            exit 2)
    | "-ignore" :: [] ->
        prerr_endline "pslint: -ignore needs an argument";
        exit 2
    | f :: _ when String.length f > 0 && f.[0] = '-' ->
        Printf.eprintf "pslint: unknown option %s\n" f;
        exit 2
    | f :: rest -> files := !files @ [ f ]; parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let findings = ref [] in
  if !do_prelude then begin
    let env = C.base_env () in
    C.declare_debugger env;
    findings :=
      !findings
      @ C.check_program ~env ~deep:!deep ~name:"prelude" Ldb_pscript.Prelude.source
  end;
  if !do_examples then check_emitted ~deep:!deep findings;
  List.iter
    (fun f ->
      let src =
        let ic = open_in_bin f in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let env = if !bare then C.base_env () else C.debugger_env () in
      findings := !findings @ C.check_program ~env ~deep:!deep ~name:f src)
    !files;
  let kept =
    List.filter (fun (f : L.finding) -> not (List.mem f.L.kind !ignored)) !findings
  in
  if !json then
    print_endline ("[" ^ String.concat "," (List.map L.finding_to_json kept) ^ "]")
  else begin
    List.iter (fun f -> print_endline (L.finding_to_string f)) kept;
    Printf.printf "pslint: %d finding(s)\n" (List.length kept)
  end;
  exit (if kept = [] then 0 else 1)
