(** dbgcheck: command-line front end of the whole-artifact debug-info
    verifier.

    Usage:
      dbgcheck [options] [file.c ...]
        -json            machine-readable output (one JSON array)
        -bare            findings only, no summary line
        -ignore K        drop findings of kind K (repeatable; see
                         Finding.kind_name)
        -target NAME     check one architecture (default: all four)
        -examples        build and check the built-in example programs
        -bpcverify       report the condition-bytecode verifier's verdict
                         on the seeded corpus (a golden test pins it) and
                         do nothing else
        -no-stops / -no-symbols / -no-frames / -no-differential /
        -no-validity     disable one check family
        -no-ir           skip the IR dataflow lint of the named C files
        -no-core         skip the core-dump round-trip check

    Named C files are compiled and linked per target, then verified.
    Exit status: 0 clean, 1 findings, 2 usage error. *)

module F = Ldb_dbgcheck.Finding
module D = Ldb_dbgcheck.Dbgcheck

let example_sources : (string * string) list list =
  [
    [
      ( "fib.c",
        {|
void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i; for (i=2; i<n; i++) a[i] = a[i-1] + a[i-2]; }
    { int j; for (j=0; j<n; j++) printf("%d ", a[j]); }
    printf("\n");
}
int main(void) { fib(10); return 0; }
|}
      );
    ];
    [
      ( "structs.c",
        {|
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; char tag; };
static struct rect r;
double scale(double f, int k) { return f * k + 0.5; }
char *name(void) { return "rect"; }
int main(void)
{
    struct point p;
    double d;
    p.x = 3; p.y = 4;
    r.lo = p;
    r.hi.x = 7; r.hi.y = 8;
    r.tag = 'r';
    d = scale(1.5, 2);
    printf("%d %d\n", r.hi.x - r.lo.x, r.hi.y - r.lo.y);
    return (int) d;
}
|}
      );
    ];
  ]

let read_file f =
  let ic = open_in_bin f in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let json = ref false in
  let bare = ref false in
  let ignored = ref [] in
  let ir_ignored = ref [] in
  let archs = ref Ldb_machine.Arch.all in
  let do_examples = ref false in
  let do_bpcverify = ref false in
  let do_ir = ref true in
  let do_core = ref true in
  let opts = ref D.all_checks in
  let files = ref [] in
  let usage fmt =
    Printf.ksprintf
      (fun s ->
        prerr_endline ("dbgcheck: " ^ s);
        exit 2)
      fmt
  in
  let rec parse = function
    | [] -> ()
    | "-json" :: rest -> json := true; parse rest
    | "-bare" :: rest -> bare := true; parse rest
    | "-examples" :: rest -> do_examples := true; parse rest
    | "-bpcverify" :: rest -> do_bpcverify := true; parse rest
    | "-no-stops" :: rest -> opts := { !opts with D.stops = false }; parse rest
    | "-no-symbols" :: rest -> opts := { !opts with D.symbols = false }; parse rest
    | "-no-frames" :: rest -> opts := { !opts with D.frames = false }; parse rest
    | "-no-differential" :: rest -> opts := { !opts with D.differential = false }; parse rest
    | "-no-validity" :: rest -> opts := { !opts with D.validity = false }; parse rest
    | "-no-ir" :: rest -> do_ir := false; parse rest
    | "-no-core" :: rest -> do_core := false; parse rest
    | "-ignore" :: k :: rest -> (
        match (F.kind_of_name k, Ldb_cc.Irlint.kind_of_name k) with
        | Some kind, _ -> ignored := kind :: !ignored; parse rest
        | None, Some kind -> ir_ignored := kind :: !ir_ignored; parse rest
        | None, None -> usage "unknown finding kind %s" k)
    | [ "-ignore" ] -> usage "-ignore needs an argument"
    | "-target" :: name :: rest -> (
        match Ldb_machine.Arch.of_name name with
        | Some a -> archs := [ a ]; parse rest
        | None -> usage "unknown target %s" name)
    | [ "-target" ] -> usage "-target needs an argument"
    | f :: _ when String.length f > 0 && f.[0] = '-' -> usage "unknown option %s" f
    | f :: rest -> files := !files @ [ f ]; parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* -bpcverify is a report, not a pass/fail check: the verdicts are the
     output, and the golden diff is what gates drift.  Exit 0 always. *)
  if !do_bpcverify then begin
    let findings = List.concat_map D.check_bpcode !archs in
    if !json then
      print_endline ("[" ^ String.concat "," (List.map F.to_json findings) ^ "]")
    else begin
      List.iter (fun f -> print_endline (F.to_string f)) findings;
      if not !bare then
        Printf.printf "dbgcheck: %d bpcverify verdict(s)\n" (List.length findings)
    end;
    exit 0
  end;
  let findings = ref [] in
  let ir_findings = ref [] in
  let check_sources sources =
    List.iter
      (fun arch ->
        Ldb_cc.Irlint.mode := if !do_ir then `Warn else `Off;
        ignore (Ldb_cc.Irlint.take ());
        let img, loader_ps =
          try Ldb_link.Driver.build ~arch sources
          with Ldb_cc.Compile.Error m | Ldb_link.Link.Error m ->
            prerr_endline ("dbgcheck: " ^ m);
            exit 2
        in
        ir_findings := !ir_findings @ Ldb_cc.Irlint.take ();
        findings := !findings @ D.check ~opts:!opts ~sources img loader_ps;
        if !do_core then begin
          (* dump the freshly loaded image and verify the dump a reader
             would see: the codec round-trip is part of the contract *)
          let proc = Ldb_link.Link.load img in
          let core = Ldb_machine.Core.of_proc proc ~signal:5 ~code:0 in
          (match Ldb_machine.Core.of_string (Ldb_machine.Core.to_string core) with
          | Ok (co, _) -> findings := !findings @ D.check_core img co
          | Error m ->
              findings :=
                !findings
                @ [ { F.kind = F.Table_error; target = Ldb_machine.Arch.name arch;
                      where = "core"; msg = "core round-trip failed: " ^ m } ])
        end)
      !archs
  in
  if !do_examples then List.iter check_sources example_sources;
  if !files <> [] then check_sources (List.map (fun f -> (f, read_file f)) !files);
  let kept = List.filter (fun (f : F.t) -> not (List.mem f.F.kind !ignored)) !findings in
  let ir_kept =
    List.filter
      (fun (f : Ldb_cc.Irlint.finding) -> not (List.mem f.Ldb_cc.Irlint.kind !ir_ignored))
      !ir_findings
  in
  if !json then
    print_endline
      ("["
      ^ String.concat ","
          (List.map F.to_json kept @ List.map Ldb_cc.Irlint.finding_to_json ir_kept)
      ^ "]")
  else begin
    List.iter (fun f -> print_endline (F.to_string f)) kept;
    List.iter (fun f -> print_endline (Ldb_cc.Irlint.finding_to_string f)) ir_kept;
    if not !bare then
      Printf.printf "dbgcheck: %d finding(s)\n" (List.length kept + List.length ir_kept)
  end;
  exit (if kept = [] && ir_kept = [] then 0 else 1)
